//! SPICE-class nonlinear circuit substrate for the `rfsim` workspace.
//!
//! Circuits are described by the differential-algebraic system of the paper
//! (eq. 1):
//!
//! ```text
//! d/dt q(x(t)) + f(x(t)) + b(t) = 0
//! ```
//!
//! where `x` collects node voltages and branch currents (modified nodal
//! analysis), `q` the charge/flux terms, `f` the conductive terms and `b`
//! the excitation. Devices stamp their contributions to `f`, `q`, their
//! Jacobians, and `b`; analyses (DC operating point, transient) and the
//! steady-state engines in the sibling crates consume the assembled system.
//!
//! # Example: RC low-pass driven by a sine
//!
//! ```
//! use rfsim_circuit::{CircuitBuilder, Waveform, GROUND};
//!
//! # fn main() -> Result<(), rfsim_circuit::CircuitError> {
//! let mut b = CircuitBuilder::new();
//! let inp = b.node("in");
//! let out = b.node("out");
//! b.vsource("V1", inp, GROUND, Waveform::sine(1.0, 1e3))?;
//! b.resistor("R1", inp, out, 1e3)?;
//! b.capacitor("C1", out, GROUND, 1e-6)?;
//! let circuit = b.build()?;
//! let op = rfsim_circuit::dcop::dc_operating_point(&circuit, Default::default())?;
//! let v_out = op.solution[circuit.unknown_index_of_node(out).expect("internal node")];
//! assert!(v_out.abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod circuit;
pub mod dcop;
pub mod devices;
pub mod driver;
pub mod fault;
pub mod newton;
pub mod stamp;
pub mod transient;
pub mod waveform;

mod error;
mod node;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, UnknownKind};
pub use devices::{DiodeParams, MosPolarity, MosfetParams};
pub use driver::{DriverOutcome, NewtonDriver, NewtonProfile, Rung, RungExec, RungKind};
pub use error::CircuitError;
pub use node::{NodeId, GROUND};
pub use stamp::StampContext;
pub use waveform::{BiWaveform, Envelope, SourceSpec, Waveform};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CircuitError>;
