//! The Newton recovery-ladder driver: one convergence policy for every
//! backend.
//!
//! The paper's convergence story has two rungs — "Newton-Raphson …
//! converged in 26 iterations; when it did not converge, continuation
//! reliably obtained solutions" (Roychowdhury, DAC 2002). Before this
//! module the reproduction scattered that policy: dcop hand-rolled gmin
//! and source stepping, the MPDE solver hand-rolled its continuation
//! fallback, the sweep engine hand-rolled an unseeded retry, and each
//! backend forked its own [`NewtonOptions`]. A [`NewtonDriver`] owns the
//! whole ladder instead:
//!
//! ```text
//!          NewtonDriver::solve_ladder
//!                    │
//!        ┌───────────▼───────────┐   Ok ───────────▶ DriverOutcome
//!        │ rung 1 (Plain)        │                    { value,
//!        └───────────┬───────────┘                      rung,
//!         recoverable│error                             rungs_attempted }
//!        ┌───────────▼───────────┐
//!        │ rung 2 (GminStepping, │   Ok ───────────▶ …
//!        │  SourceStepping,      │
//!        │  Continuation, or     │
//!        │  RetryUnseeded)       │
//!        └───────────┬───────────┘
//!         recoverable│error           Interrupted / Structural errors
//!                    ▼                short-circuit every rung.
//!                   (…)
//! ```
//!
//! Each rung runs inside a [`RungExec`] that carries the driver's
//! [`NewtonOptions`], the shared [`LinearSolverWorkspace`] (the Jacobian
//! pattern is rung-invariant, so symbolic factorisations survive rung
//! transitions), and a rung-staged [`SolveBudget`] child whose
//! [`stage`](rfsim_numerics::SolveProgress::stage) label names the rung
//! — a progress callback installed upstream (the serve layer's per-job
//! observer) therefore sees `{rung, iteration, best_residual}` without
//! any extra plumbing.
//!
//! Error classification is the ladder's contract (see
//! [`CircuitError::is_recoverable`]): divergence
//! ([`CircuitError::Diverged`]), iteration exhaustion and singular
//! kernels feed the next rung; budget interruptions and structural /
//! parameter errors abort the whole ladder — no rung can fix a deadline
//! or a floating node.

use rfsim_numerics::SolveBudget;

use crate::circuit::UnknownKind;
use crate::error::CircuitError;
use crate::newton::{
    newton_solve_budgeted, LinearSolverWorkspace, NewtonOptions, NewtonStats, NewtonSystem,
};
use crate::Result;

/// Identity of one recovery-ladder rung. The label is stable (wire
/// protocols, logs, progress snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RungKind {
    /// Plain budgeted Newton (damping and backtracking included).
    Plain,
    /// Gmin stepping: a shrinking shunt conductance to ground.
    GminStepping,
    /// Source stepping: ramping the excitation from zero.
    SourceStepping,
    /// Continuation / homotopy: ramping a problem-specific λ.
    Continuation,
    /// Retrying without the warm-start seed that poisoned the basin.
    RetryUnseeded,
}

impl RungKind {
    /// Stable lowercase label, used as the budget stage and on the wire.
    pub fn label(&self) -> &'static str {
        match self {
            RungKind::Plain => "plain",
            RungKind::GminStepping => "gmin_stepping",
            RungKind::SourceStepping => "source_stepping",
            RungKind::Continuation => "continuation",
            RungKind::RetryUnseeded => "retry_unseeded",
        }
    }
}

/// Named Newton option profiles — the per-backend `NewtonOptions` forks,
/// consolidated. A backend asks for its profile instead of hand-editing
/// iteration counts; anything not listed here is policy drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NewtonProfile {
    /// DC operating point: junction exponentials converge one thermal
    /// voltage per iteration until the quadratic regime, so DC gets a
    /// deep budget (iterations are cheap at circuit size).
    Dc,
    /// Steady-state boundary-value solves (HB2, periodic FD): the
    /// collocation systems are larger and stiffer than one timestep but
    /// warm-started by sweeps — a doubled budget.
    SteadyState,
    /// Large multi-time grid solves (MPDE): default depth plus chord
    /// (modified-Newton) reuse — on the grid systems refactorisation is
    /// the dominant cost.
    Grid,
    /// Continuation inner steps: each λ step starts near the previous
    /// solution, so a short budget fails fast and lets the step-halving
    /// logic react.
    ContinuationStep,
    /// Everything else (transient timesteps, shooting, HB1): the
    /// [`NewtonOptions`] defaults.
    Standard,
}

impl NewtonProfile {
    /// The profile's options.
    pub fn options(self) -> NewtonOptions {
        match self {
            NewtonProfile::Dc => NewtonOptions {
                max_iters: 500,
                ..Default::default()
            },
            NewtonProfile::SteadyState => NewtonOptions {
                max_iters: 200,
                ..Default::default()
            },
            NewtonProfile::Grid => NewtonOptions {
                jacobian_reuse: 2,
                ..Default::default()
            },
            NewtonProfile::ContinuationStep => NewtonOptions {
                max_iters: 60,
                ..Default::default()
            },
            NewtonProfile::Standard => NewtonOptions::default(),
        }
    }
}

/// What a successful ladder solve reports: the rung that delivered the
/// value and how many rungs it took to get there.
#[derive(Debug, Clone)]
pub struct DriverOutcome<T> {
    /// The solution the winning rung produced.
    pub value: T,
    /// Which rung succeeded.
    pub rung: RungKind,
    /// Rungs attempted including the winner (1 = first try).
    pub rungs_attempted: usize,
}

/// The execution context one rung runs in: the driver's options, the
/// ladder-shared workspace, and a budget child staged with the rung's
/// label so progress observers can tell rungs apart.
pub struct RungExec<'a> {
    options: NewtonOptions,
    workspace: &'a mut LinearSolverWorkspace,
    budget: SolveBudget,
}

impl RungExec<'_> {
    /// The driver's Newton options (the rung may derive variants, e.g. a
    /// shorter-budget copy for continuation inner steps).
    pub fn options(&self) -> NewtonOptions {
        self.options
    }

    /// The ladder-shared linear-solver workspace.
    pub fn workspace(&mut self) -> &mut LinearSolverWorkspace {
        self.workspace
    }

    /// The rung-staged budget (stage = the rung's label). Pass it to
    /// sub-solvers that manage their own Newton calls.
    pub fn budget(&self) -> &SolveBudget {
        &self.budget
    }

    /// Simultaneous workspace + staged-budget access, for rungs that
    /// hand both to a whole sub-solver (a sweep backend, a continuation
    /// run) in one call.
    pub fn parts(&mut self) -> (&mut LinearSolverWorkspace, &SolveBudget) {
        (self.workspace, &self.budget)
    }

    /// One budgeted Newton solve under the rung's options and staged
    /// budget.
    ///
    /// # Errors
    ///
    /// Everything [`newton_solve_budgeted`] returns.
    pub fn newton<S: NewtonSystem>(
        &mut self,
        system: &S,
        x0: &[f64],
        kinds: &[UnknownKind],
    ) -> Result<(Vec<f64>, NewtonStats)> {
        let options = self.options;
        self.newton_with(options, system, x0, kinds)
    }

    /// [`RungExec::newton`] with explicit options — for rungs whose
    /// sub-steps want a different budget shape (continuation inner
    /// steps) while keeping the staged budget and shared workspace.
    ///
    /// # Errors
    ///
    /// Everything [`newton_solve_budgeted`] returns.
    pub fn newton_with<S: NewtonSystem>(
        &mut self,
        options: NewtonOptions,
        system: &S,
        x0: &[f64],
        kinds: &[UnknownKind],
    ) -> Result<(Vec<f64>, NewtonStats)> {
        newton_solve_budgeted(system, x0, kinds, options, self.workspace, &self.budget)
    }
}

/// The boxed body of one rung (see [`Rung::new`]).
type RungFn<'a, T> = Box<dyn FnMut(&mut RungExec<'_>) -> Result<T> + 'a>;

/// One declared rung: its identity plus the closure that runs it. The
/// closure returns the backend's own solution type — whole-solution
/// rungs (the sweep engine's unseeded retry) and plain Newton rungs ride
/// the same ladder.
pub struct Rung<'a, T> {
    kind: RungKind,
    run: RungFn<'a, T>,
}

impl<'a, T> Rung<'a, T> {
    /// Declares a rung.
    pub fn new(kind: RungKind, run: impl FnMut(&mut RungExec<'_>) -> Result<T> + 'a) -> Self {
        Rung {
            kind,
            run: Box::new(run),
        }
    }

    /// The rung's identity.
    pub fn kind(&self) -> RungKind {
        self.kind
    }
}

/// The recovery-ladder driver. Construct from a profile
/// ([`NewtonDriver::with_profile`]) or explicit options, then either run
/// a declared ladder ([`NewtonDriver::solve_ladder`]) or a single plain
/// solve ([`NewtonDriver::solve`]) — both count rung attempts and
/// successes into [`WorkspaceStats`](crate::newton::WorkspaceStats) and
/// stage the budget per rung.
#[derive(Debug, Clone, Copy)]
pub struct NewtonDriver {
    options: NewtonOptions,
}

impl Default for NewtonDriver {
    fn default() -> Self {
        NewtonDriver::with_profile(NewtonProfile::Standard)
    }
}

impl NewtonDriver {
    /// A driver with explicit options (a profile's options that a caller
    /// has further customised — tolerances, linear strategy).
    pub fn new(options: NewtonOptions) -> Self {
        NewtonDriver { options }
    }

    /// A driver on a named profile.
    pub fn with_profile(profile: NewtonProfile) -> Self {
        NewtonDriver {
            options: profile.options(),
        }
    }

    /// The driver's options.
    pub fn options(&self) -> NewtonOptions {
        self.options
    }

    /// Runs the rungs in order and returns the first success. A rung's
    /// *recoverable* error ([`CircuitError::is_recoverable`]) feeds the
    /// next rung; interruptions and structural errors abort the ladder
    /// immediately. With every rung exhausted, the last rung's error is
    /// returned (typed — a diverged plain rung followed by a diverged
    /// stepping rung reports `Diverged`, never a synthetic
    /// `ConvergenceFailure`).
    ///
    /// # Errors
    ///
    /// The first non-recoverable error, or the last rung's error once
    /// all rungs fail. `analysis` names the caller in the
    /// empty-ladder structural error only.
    pub fn solve_ladder<T>(
        &self,
        analysis: &str,
        workspace: &mut LinearSolverWorkspace,
        budget: &SolveBudget,
        rungs: Vec<Rung<'_, T>>,
    ) -> Result<DriverOutcome<T>> {
        if rungs.is_empty() {
            return Err(CircuitError::Structural {
                context: format!("{analysis}: recovery ladder declared no rungs"),
            });
        }
        let mut last_err: Option<CircuitError> = None;
        for (attempt, mut rung) in rungs.into_iter().enumerate() {
            workspace.stats.rung_attempts += 1;
            let mut exec = RungExec {
                options: self.options,
                workspace,
                budget: budget.child().with_stage(rung.kind.label()),
            };
            // Announce the rung before running it, so progress observers
            // (poll snapshots, job timelines) see the transition even if
            // the rung errors out before completing one Newton iteration.
            exec.budget.announce_stage();
            match (rung.run)(&mut exec) {
                Ok(value) => {
                    workspace.stats.rung_successes += 1;
                    return Ok(DriverOutcome {
                        value,
                        rung: rung.kind,
                        rungs_attempted: attempt + 1,
                    });
                }
                Err(e) if e.is_recoverable() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("non-empty ladder records an error per failed rung"))
    }

    /// A one-rung ([`RungKind::Plain`]) budgeted Newton solve through
    /// the driver — the path every per-step backend (transient
    /// timesteps, shooting, HB, periodic FD, envelope) takes, so rung
    /// accounting and progress staging are uniform even where no
    /// fallback rung exists.
    ///
    /// # Errors
    ///
    /// Everything [`newton_solve_budgeted`] returns.
    pub fn solve<S: NewtonSystem>(
        &self,
        system: &S,
        x0: &[f64],
        kinds: &[UnknownKind],
        workspace: &mut LinearSolverWorkspace,
        budget: &SolveBudget,
    ) -> Result<(Vec<f64>, NewtonStats)> {
        let outcome = self.solve_ladder(
            "newton",
            workspace,
            budget,
            vec![Rung::new(RungKind::Plain, |exec| {
                exec.newton(system, x0, kinds)
            })],
        )?;
        Ok(outcome.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_numerics::sparse::Triplets;
    use std::sync::{Arc, Mutex};

    /// x² − 4 = 0: converges from any positive start.
    struct Quadratic;

    impl NewtonSystem for Quadratic {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] - 4.0;
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, 2.0 * x[0]);
        }
    }

    /// Finite residual only at the start: plain Newton diverges (typed).
    struct NaNRidge;

    impl NewtonSystem for NaNRidge {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = if x[0] == 0.0 { 1.0 } else { f64::NAN };
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, 1.0);
        }
    }

    fn plain_rung<'a>(x0: &'a [f64]) -> Rung<'a, (Vec<f64>, NewtonStats)> {
        Rung::new(RungKind::Plain, move |exec| {
            exec.newton(&Quadratic, x0, &[])
        })
    }

    #[test]
    fn easy_fixture_is_bit_identical_across_ladder_configs() {
        // Every ladder configuration must take rung 1 and produce the
        // *same bits*: extra declared rungs change nothing when Newton
        // converges first try.
        let driver = NewtonDriver::default();
        let x0 = [3.0];
        let mut reference: Option<Vec<f64>> = None;
        for extra in 0..3usize {
            let mut ws = LinearSolverWorkspace::new();
            let mut rungs = vec![plain_rung(&x0)];
            for kind in [RungKind::GminStepping, RungKind::SourceStepping]
                .into_iter()
                .take(extra)
            {
                rungs.push(Rung::new(kind, |_exec| {
                    panic!("an unused fallback rung must never run")
                }));
            }
            let outcome = driver
                .solve_ladder("quadratic", &mut ws, &SolveBudget::unlimited(), rungs)
                .expect("rung 1 converges");
            assert_eq!(outcome.rung, RungKind::Plain);
            assert_eq!(outcome.rungs_attempted, 1);
            assert_eq!(ws.stats.rung_attempts, 1);
            assert_eq!(ws.stats.rung_successes, 1);
            let solution = outcome.value.0;
            match &reference {
                None => reference = Some(solution),
                Some(r) => assert_eq!(
                    r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    solution.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "ladder config {extra} drifted"
                ),
            }
        }
    }

    #[test]
    fn hard_fixture_climbs_to_the_next_rung_on_divergence() {
        // Plain Newton on the NaN ridge diverges (typed, immediately);
        // the continuation rung then solves a benign reformulation. The
        // ladder must deliver the rung-2 solution, and the counters must
        // show one absorbed failure.
        let driver = NewtonDriver::default();
        let mut ws = LinearSolverWorkspace::new();
        let outcome = driver
            .solve_ladder(
                "ridge",
                &mut ws,
                &SolveBudget::unlimited(),
                vec![
                    Rung::new(RungKind::Plain, |exec| exec.newton(&NaNRidge, &[0.0], &[])),
                    Rung::new(RungKind::Continuation, |exec| {
                        exec.newton(&Quadratic, &[3.0], &[])
                    }),
                ],
            )
            .expect("rung 2 rescues");
        assert_eq!(outcome.rung, RungKind::Continuation);
        assert_eq!(outcome.rungs_attempted, 2);
        assert_eq!(ws.stats.rung_attempts, 2);
        assert_eq!(ws.stats.rung_successes, 1);
        assert!((outcome.value.0[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn exhausted_ladder_returns_the_typed_divergence() {
        // Both rungs diverge: the caller sees `Diverged`, not a
        // synthetic ConvergenceFailure after max_iters of NaN.
        let driver = NewtonDriver::default();
        let mut ws = LinearSolverWorkspace::new();
        let err = driver
            .solve_ladder(
                "ridge",
                &mut ws,
                &SolveBudget::unlimited(),
                vec![
                    Rung::new(RungKind::Plain, |exec| exec.newton(&NaNRidge, &[0.0], &[])),
                    Rung::new(RungKind::GminStepping, |exec| {
                        exec.newton(&NaNRidge, &[0.0], &[])
                    }),
                ],
            )
            .expect_err("no rung can solve the ridge");
        assert!(matches!(err, CircuitError::Diverged { .. }), "got {err:?}");
        assert_eq!(ws.stats.rung_attempts, 2);
        assert_eq!(ws.stats.rung_successes, 0);
    }

    #[test]
    fn interruption_short_circuits_remaining_rungs() {
        let token = rfsim_numerics::CancelToken::new();
        token.cancel();
        let budget = SolveBudget::unlimited().with_cancel(token);
        let driver = NewtonDriver::default();
        let mut ws = LinearSolverWorkspace::new();
        let err = driver
            .solve_ladder(
                "cancelled",
                &mut ws,
                &budget,
                vec![
                    Rung::new(RungKind::Plain, |exec| exec.newton(&Quadratic, &[3.0], &[])),
                    Rung::new(RungKind::GminStepping, |_exec| {
                        panic!("rungs after an interruption must not run")
                    }),
                ],
            )
            .expect_err("pre-cancelled");
        assert!(err.is_interrupted());
        assert_eq!(ws.stats.rung_attempts, 1);
    }

    #[test]
    fn progress_snapshots_carry_the_rung_label() {
        // The driver stages each rung's budget child with the rung
        // label, so an upstream progress observer (the serve layer) sees
        // which rung is reporting without extra plumbing.
        let stages = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&stages);
        let budget =
            SolveBudget::unlimited().with_progress(move |p| sink.lock().unwrap().push(p.stage));
        let driver = NewtonDriver::default();
        let mut ws = LinearSolverWorkspace::new();
        driver
            .solve_ladder(
                "staged",
                &mut ws,
                &budget,
                vec![
                    Rung::new(RungKind::Plain, |exec| exec.newton(&NaNRidge, &[0.0], &[])),
                    Rung::new(RungKind::SourceStepping, |exec| {
                        exec.newton(&Quadratic, &[3.0], &[])
                    }),
                ],
            )
            .expect("rung 2 rescues");
        let stages = stages.lock().unwrap();
        assert!(
            stages.contains(&Some("source_stepping")),
            "rung 2 iterations must be labelled, got {stages:?}"
        );
        assert!(
            !stages.contains(&None),
            "every driver iteration is staged, got {stages:?}"
        );
    }

    #[test]
    fn profiles_pin_the_per_backend_forks() {
        assert_eq!(NewtonProfile::Dc.options().max_iters, 500);
        assert_eq!(NewtonProfile::SteadyState.options().max_iters, 200);
        let grid = NewtonProfile::Grid.options();
        assert_eq!(grid.max_iters, NewtonOptions::default().max_iters);
        assert_eq!(grid.jacobian_reuse, 2);
        assert_eq!(NewtonProfile::ContinuationStep.options().max_iters, 60);
        assert_eq!(
            NewtonProfile::Standard.options().max_iters,
            NewtonOptions::default().max_iters
        );
    }

    #[test]
    fn single_solve_counts_one_rung() {
        let driver = NewtonDriver::default();
        let mut ws = LinearSolverWorkspace::new();
        let (x, _) = driver
            .solve(&Quadratic, &[3.0], &[], &mut ws, &SolveBudget::unlimited())
            .expect("solves");
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert_eq!(ws.stats.rung_attempts, 1);
        assert_eq!(ws.stats.rung_successes, 1);
    }
}
