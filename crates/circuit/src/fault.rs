//! Deterministic fault injection for robustness testing.
//!
//! A [`SolveFault`] makes a solve misbehave *on command* — stall
//! indefinitely, diverge, or panic — so the layers above (sweep engine,
//! serve scheduler) can prove their control plane works: cooperative
//! cancellation interrupts a hung solve, deadlines reclaim scheduler
//! slots, retry ladders absorb transient failures, and a panicking
//! solve fails one batch instead of a whole service.
//!
//! The faults are not mocks: [`SolveFault::run`] executes a genuine
//! budgeted Newton solve (through the [`NewtonDriver`]) over a tiny
//! synthetic [`NewtonSystem`] engineered to exhibit the failure mode,
//! so the exact production code paths — the iteration loop, the damping
//! trials, the budget check points — are what the tests exercise.
//!
//! This module exists for tests and operational drills. Production job
//! paths never construct faults; wiring one into a real workload only
//! makes that workload fail, never corrupts a result.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::SolveBudget;

use crate::driver::NewtonDriver;
use crate::newton::{NewtonOptions, NewtonSystem};
use crate::Result;

/// What the injected solve does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Every residual evaluation sleeps `poll_ms` and never converges:
    /// a hung solve that burns wall-clock until its budget interrupts
    /// it — or until the `max_ms` safety bound converts it into a
    /// plain convergence failure, so a buggy harness can never deadlock
    /// a test run forever.
    Stall {
        /// Sleep per residual evaluation (milliseconds).
        poll_ms: u64,
        /// Hard wall-clock bound on the stall (milliseconds).
        max_ms: u64,
    },
    /// The residual has no root (`x² + 1`): Newton burns a small
    /// iteration budget and fails with a convergence error — the
    /// transient-failure shape retry ladders are tested against.
    Diverge,
    /// Panics on the first residual evaluation — exercises the
    /// scheduler's `catch_unwind` isolation.
    Panic,
}

/// A deterministic injected fault; see the module docs. Cheap to clone
/// and attach per job — clones share the [`SolveFault::times`] firing
/// counter, so a bounded fault fires its quota once across all holders.
#[derive(Debug, Clone)]
pub struct SolveFault {
    mode: FaultMode,
    /// Firings left; `None` fires on every run. Shared across clones.
    remaining: Option<Arc<AtomicUsize>>,
}

impl SolveFault {
    /// A stalling fault: hangs (sleeping `poll_ms` per residual
    /// evaluation) until the budget interrupts it or `max_ms` elapses.
    pub fn stall(poll_ms: u64, max_ms: u64) -> Self {
        SolveFault {
            mode: FaultMode::Stall { poll_ms, max_ms },
            remaining: None,
        }
    }

    /// A diverging fault: fails quickly with a convergence error.
    pub fn diverge() -> Self {
        SolveFault {
            mode: FaultMode::Diverge,
            remaining: None,
        }
    }

    /// A panicking fault.
    pub fn panicking() -> Self {
        SolveFault {
            mode: FaultMode::Panic,
            remaining: None,
        }
    }

    /// Bounds the fault to its first `n` runs; afterwards
    /// [`SolveFault::run`] is a no-op success. This is the *transient*
    /// failure shape retry ladders are tested against: fail `n` times,
    /// then recover. The counter is shared across clones.
    #[must_use]
    pub fn times(mut self, n: usize) -> Self {
        self.remaining = Some(Arc::new(AtomicUsize::new(n)));
        self
    }

    /// The configured mode.
    pub fn mode(&self) -> FaultMode {
        self.mode
    }

    /// Runs the injected solve under `budget`.
    ///
    /// # Errors
    ///
    /// [`crate::CircuitError::Interrupted`] when the budget stops a
    /// stall, [`crate::CircuitError::ConvergenceFailure`] when a stall
    /// runs to its safety bound, [`crate::CircuitError::Diverged`] when
    /// the diverge fault fires.
    ///
    /// # Panics
    ///
    /// By design, for [`FaultMode::Panic`].
    pub fn run(&self, budget: &SolveBudget) -> Result<()> {
        if let Some(remaining) = &self.remaining {
            let fired = remaining
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_ok();
            if !fired {
                return Ok(());
            }
        }
        match self.mode {
            FaultMode::Stall { poll_ms, max_ms } => {
                let system = StallSystem { poll_ms };
                // Never converges; the iteration budget is sized so the
                // safety bound trips at roughly `max_ms` even if the
                // solve budget never fires. Each iteration costs at
                // least one residual evaluation (`poll_ms` of sleep).
                let options = NewtonOptions {
                    max_iters: (max_ms / poll_ms.max(1)).max(1) as usize,
                    ..Default::default()
                };
                NewtonDriver::new(options)
                    .solve(
                        &system,
                        &[0.0],
                        &[],
                        &mut crate::newton::LinearSolverWorkspace::new(),
                        budget,
                    )
                    .map(|_| ())
            }
            FaultMode::Diverge => {
                let system = DivergeSystem;
                let options = NewtonOptions {
                    max_iters: 8,
                    ..Default::default()
                };
                NewtonDriver::new(options)
                    .solve(
                        &system,
                        &[1.0],
                        &[],
                        &mut crate::newton::LinearSolverWorkspace::new(),
                        budget,
                    )
                    .map(|_| ())
            }
            FaultMode::Panic => panic!("injected fault: panic on solve"),
        }
    }
}

/// `F(x) = 1` with a unit Jacobian: the residual never drops, every
/// damping trial fails, and each evaluation sleeps — a faithful model of
/// a solve that is alive but going nowhere.
struct StallSystem {
    poll_ms: u64,
}

impl NewtonSystem for StallSystem {
    fn dim(&self) -> usize {
        1
    }

    fn residual(&self, _x: &[f64], out: &mut [f64]) {
        std::thread::sleep(Duration::from_millis(self.poll_ms));
        out[0] = 1.0;
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        self.residual(x, out);
        jac.push(0, 0, 1.0);
    }
}

/// Finite residual only at the seed point: the first Newton step's
/// damping trials are all non-finite, so the solve returns the typed
/// [`crate::CircuitError::Diverged`] immediately. The fault models
/// *divergence* (the recovery ladder's rung signal), not mere iteration
/// exhaustion — drills assert the typed outcome survives all the way to
/// a wire poll.
struct DivergeSystem;

impl NewtonSystem for DivergeSystem {
    fn dim(&self) -> usize {
        1
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        out[0] = if x[0] == 1.0 { 1.0 } else { f64::NAN };
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        self.residual(x, out);
        jac.push(0, 0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_numerics::{CancelToken, InterruptReason};
    use std::time::Instant;

    #[test]
    fn stall_fault_is_interrupted_by_cancel() {
        let token = CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(token.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        });
        let t0 = Instant::now();
        let err = SolveFault::stall(2, 30_000)
            .run(&budget)
            .expect_err("stall must not converge");
        canceller.join().unwrap();
        let i = err.interrupted().expect("typed interruption");
        assert_eq!(i.reason, InterruptReason::Cancelled);
        // Cancellation latency is bounded by one residual evaluation,
        // not the 30 s safety bound.
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn stall_fault_expires_on_deadline() {
        let budget = SolveBudget::unlimited().with_timeout(Duration::from_millis(20));
        let err = SolveFault::stall(2, 30_000)
            .run(&budget)
            .expect_err("stall must not converge");
        assert_eq!(
            err.interrupted().expect("typed interruption").reason,
            InterruptReason::DeadlineExpired
        );
    }

    #[test]
    fn stall_fault_safety_bound_fails_without_budget() {
        let err = SolveFault::stall(1, 30)
            .run(&SolveBudget::unlimited())
            .expect_err("stall must not converge");
        assert!(err.interrupted().is_none(), "no budget fired: {err}");
    }

    #[test]
    fn diverge_fault_fails_fast_with_the_typed_outcome() {
        let err = SolveFault::diverge()
            .run(&SolveBudget::unlimited())
            .expect_err("diverge must fail");
        assert!(err.interrupted().is_none());
        assert!(
            matches!(err, crate::CircuitError::Diverged { .. }),
            "the diverge fault reports typed divergence, got {err:?}"
        );
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fault_panics() {
        let _ = SolveFault::panicking().run(&SolveBudget::unlimited());
    }

    #[test]
    fn bounded_fault_recovers_after_quota() {
        let fault = SolveFault::diverge().times(2);
        let twin = fault.clone();
        assert!(fault.run(&SolveBudget::unlimited()).is_err());
        // Clones share the counter: the twin consumes the second firing.
        assert!(twin.run(&SolveBudget::unlimited()).is_err());
        assert!(fault.run(&SolveBudget::unlimited()).is_ok(), "quota spent");
        assert!(twin.run(&SolveBudget::unlimited()).is_ok());
    }
}
