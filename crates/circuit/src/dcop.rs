//! DC operating-point analysis with gmin and source stepping.
//!
//! Solves `f(x) + b(0) = 0`. The robustness ladder mirrors SPICE:
//! plain Newton → gmin stepping (a shrinking shunt conductance from every
//! node voltage to ground) → source stepping (ramping the excitation from
//! zero). The same continuation ideas reappear at the MPDE level (the paper
//! reports "using continuation reliably obtained solutions").

use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::SolveBudget;

use crate::circuit::{Circuit, UnknownKind};
use crate::driver::{NewtonDriver, NewtonProfile, Rung, RungExec, RungKind};
use crate::newton::{LinearSolverWorkspace, NewtonOptions, NewtonStats, NewtonSystem};
use crate::{CircuitError, Result};

/// Options for [`dc_operating_point`].
#[derive(Debug, Clone, Copy)]
pub struct DcOptions {
    /// Newton options for each inner solve.
    pub newton: NewtonOptions,
    /// Initial gmin for gmin stepping (S).
    pub gmin_start: f64,
    /// Final gmin left in place during analysis (0 = removed).
    pub gmin_final: f64,
    /// Decades per gmin step.
    pub gmin_steps_per_decade: usize,
    /// Maximum source-stepping substeps.
    pub max_source_steps: usize,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            newton: NewtonProfile::Dc.options(),
            gmin_start: 1e-2,
            gmin_final: 1e-12,
            gmin_steps_per_decade: 1,
            max_source_steps: 200,
        }
    }
}

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcResult {
    /// The operating point (node voltages then branch currents).
    pub solution: Vec<f64>,
    /// Statistics of the final Newton solve.
    pub stats: NewtonStats,
    /// Which strategy succeeded.
    pub strategy: DcStrategy,
}

/// Which rung of the robustness ladder produced the solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcStrategy {
    /// Plain Newton from the zero vector.
    Direct,
    /// Gmin stepping.
    GminStepping,
    /// Source stepping.
    SourceStepping,
}

/// The DC system `f(x) + λ·b(0) + gmin·x_v = 0`.
struct DcSystem<'a> {
    circuit: &'a Circuit,
    b: Vec<f64>,
    gmin: f64,
    lambda: f64,
}

impl NewtonSystem for DcSystem<'_> {
    fn dim(&self) -> usize {
        self.circuit.num_unknowns()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        self.circuit.eval_f(x, out, None);
        for i in 0..out.len() {
            out[i] += self.lambda * self.b[i];
            if self.circuit.unknown_kinds()[i] == UnknownKind::NodeVoltage {
                out[i] += self.gmin * x[i];
            }
        }
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        self.circuit.eval_f(x, out, Some(jac));
        for i in 0..out.len() {
            out[i] += self.lambda * self.b[i];
            if self.circuit.unknown_kinds()[i] == UnknownKind::NodeVoltage {
                out[i] += self.gmin * x[i];
                jac.push(i, i, self.gmin);
            }
        }
    }
}

/// Computes the DC operating point of a circuit.
///
/// # Errors
///
/// Returns [`CircuitError::ConvergenceFailure`] if every strategy fails.
pub fn dc_operating_point(circuit: &Circuit, options: DcOptions) -> Result<DcResult> {
    dc_operating_point_budgeted(circuit, options, &SolveBudget::unlimited())
}

/// [`dc_operating_point`] under a [`SolveBudget`].
///
/// The ladder is declared on a [`NewtonDriver`]: plain Newton → gmin
/// stepping → source stepping, each rung under a stage-labelled budget
/// child. A [`CircuitError::Interrupted`] outcome short-circuits the
/// whole ladder (the driver never retries a control-plane stop), as does
/// any structural error; recoverable failures — divergence, iteration
/// exhaustion, singular kernels — feed the next rung.
///
/// # Errors
///
/// [`CircuitError::Interrupted`] when the budget stops a solve; the last
/// rung's typed error if every strategy fails.
pub fn dc_operating_point_budgeted(
    circuit: &Circuit,
    options: DcOptions,
    budget: &SolveBudget,
) -> Result<DcResult> {
    let n = circuit.num_unknowns();
    let mut b = vec![0.0; n];
    circuit.eval_b(0.0, &mut b);
    let kinds = circuit.unknown_kinds().to_vec();
    let x0 = vec![0.0; n];
    // The DC system's Jacobian pattern is identical across every rung of
    // the ladder (gmin and λ scale values, never structure), so one
    // workspace carries the symbolic factorisation through all of them.
    let mut workspace = LinearSolverWorkspace::new();
    let driver = NewtonDriver::new(options.newton);
    let b_ref = &b;
    let kinds_ref = &kinds;
    let opts_ref = &options;
    let outcome = driver.solve_ladder(
        "dc operating point",
        &mut workspace,
        budget,
        vec![
            Rung::new(RungKind::Plain, |exec: &mut RungExec<'_>| {
                let sys = DcSystem {
                    circuit,
                    b: b_ref.clone(),
                    gmin: opts_ref.gmin_final,
                    lambda: 1.0,
                };
                exec.newton(&sys, &x0, kinds_ref)
            }),
            Rung::new(RungKind::GminStepping, |exec: &mut RungExec<'_>| {
                gmin_stepping(circuit, b_ref, kinds_ref, opts_ref, exec)
            }),
            Rung::new(RungKind::SourceStepping, |exec: &mut RungExec<'_>| {
                source_stepping(circuit, b_ref, kinds_ref, opts_ref, exec)
            }),
        ],
    )?;
    let strategy = match outcome.rung {
        RungKind::GminStepping => DcStrategy::GminStepping,
        RungKind::SourceStepping => DcStrategy::SourceStepping,
        _ => DcStrategy::Direct,
    };
    let (solution, stats) = outcome.value;
    Ok(DcResult {
        solution,
        stats,
        strategy,
    })
}

/// The gmin-stepping rung: ramp a shunt conductance down decade by
/// decade, then polish at the residual gmin. Any sub-solve error
/// propagates — the driver classifies it (recoverable → next rung).
fn gmin_stepping(
    circuit: &Circuit,
    b: &[f64],
    kinds: &[UnknownKind],
    options: &DcOptions,
    exec: &mut RungExec<'_>,
) -> Result<(Vec<f64>, NewtonStats)> {
    let mut x = vec![0.0; circuit.num_unknowns()];
    let mut gmin = options.gmin_start;
    let factor = 10f64.powf(1.0 / options.gmin_steps_per_decade.max(1) as f64);
    loop {
        let sys = DcSystem {
            circuit,
            b: b.to_vec(),
            gmin,
            lambda: 1.0,
        };
        x = exec.newton(&sys, &x, kinds)?.0;
        if gmin <= options.gmin_final {
            break;
        }
        gmin = (gmin / factor).max(options.gmin_final);
    }
    // Final polish at the residual gmin.
    let sys = DcSystem {
        circuit,
        b: b.to_vec(),
        gmin: options.gmin_final,
        lambda: 1.0,
    };
    exec.newton(&sys, &x, kinds)
}

/// The source-stepping rung: ramp the excitation λ from 0 to 1, halving
/// the step on recoverable failures (step-level retries stay inside the
/// rung; only running out of step budget fails it).
fn source_stepping(
    circuit: &Circuit,
    b: &[f64],
    kinds: &[UnknownKind],
    options: &DcOptions,
    exec: &mut RungExec<'_>,
) -> Result<(Vec<f64>, NewtonStats)> {
    let give_up = |steps_used: usize| CircuitError::ConvergenceFailure {
        analysis: "dc operating point (source stepping)".into(),
        iterations: steps_used,
        residual: f64::NAN,
    };
    let mut x = vec![0.0; circuit.num_unknowns()];
    let mut lambda: f64 = 0.0;
    let mut step: f64 = 0.1;
    let mut steps_used = 0;
    let mut last_stats = None;
    while lambda < 1.0 {
        if steps_used >= options.max_source_steps {
            return Err(give_up(steps_used));
        }
        let target = (lambda + step).min(1.0);
        let sys = DcSystem {
            circuit,
            b: b.to_vec(),
            gmin: options.gmin_final,
            lambda: target,
        };
        match exec.newton(&sys, &x, kinds) {
            Ok((sol, stats)) => {
                x = sol;
                lambda = target;
                last_stats = Some(stats);
                step = (step * 1.5).min(0.25);
            }
            Err(e) if e.is_recoverable() => {
                // Numerical failure: halve the source step and retry.
                step *= 0.5;
                if step < 1e-6 {
                    return Err(give_up(steps_used));
                }
            }
            Err(e) => return Err(e),
        }
        steps_used += 1;
    }
    let stats = last_stats.ok_or_else(|| CircuitError::Structural {
        context: "source stepping finished without a successful step".into(),
    })?;
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::devices::{DiodeParams, MosfetParams};
    use crate::node::GROUND;
    use crate::waveform::Waveform;

    #[test]
    fn voltage_divider() {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let mid = b.node("mid");
        b.vsource("V1", inp, GROUND, Waveform::Dc(10.0)).expect("v");
        b.resistor("R1", inp, mid, 1e3).expect("r1");
        b.resistor("R2", mid, GROUND, 3e3).expect("r2");
        let ckt = b.build().expect("build");
        let op = dc_operating_point(&ckt, DcOptions::default()).expect("dc");
        assert!((op.solution[0] - 10.0).abs() < 1e-6);
        assert!((op.solution[1] - 7.5).abs() < 1e-6);
        // Source branch current: −(10−7.5)/1k = −2.5 mA.
        assert!((op.solution[2] + 2.5e-3).abs() < 1e-8);
        assert_eq!(op.strategy, DcStrategy::Direct);
    }

    #[test]
    fn diode_resistor_forward_drop() {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let anode = b.node("a");
        b.vsource("V1", inp, GROUND, Waveform::Dc(5.0)).expect("v");
        b.resistor("R1", inp, anode, 1e3).expect("r");
        b.diode("D1", anode, GROUND, DiodeParams::default())
            .expect("d");
        let ckt = b.build().expect("build");
        let op = dc_operating_point(&ckt, DcOptions::default()).expect("dc");
        let vd = op.solution[1];
        assert!(
            (0.55..0.75).contains(&vd),
            "silicon diode drop expected, got {vd}"
        );
        // KCL: current through R equals diode current.
        let ir = (5.0 - vd) / 1e3;
        assert!(ir > 3e-3, "a few mA flows: {ir}");
    }

    #[test]
    fn mosfet_common_source_bias() {
        let mut b = CircuitBuilder::new();
        let vdd = b.node("vdd");
        let gate = b.node("g");
        let drain = b.node("d");
        b.vsource("VDD", vdd, GROUND, Waveform::Dc(3.0))
            .expect("vdd");
        b.vsource("VG", gate, GROUND, Waveform::Dc(1.2))
            .expect("vg");
        b.resistor("RD", vdd, drain, 5e3).expect("rd");
        b.mosfet("M1", drain, gate, GROUND, MosfetParams::default())
            .expect("m");
        let ckt = b.build().expect("build");
        let op = dc_operating_point(&ckt, DcOptions::default()).expect("dc");
        let vd = op.solution[ckt
            .unknown_index_of_node(ckt.node_by_name("d").expect("d"))
            .expect("idx")];
        // With KP=100µ, W/L=20, vgt=0.7: Isat ≈ ½·2m·0.49 ≈ 0.49 mA → drop ≈ 2.45 V.
        assert!(vd > 0.2 && vd < 1.2, "drain should sit low-ish, got {vd}");
    }

    #[test]
    fn floating_node_regularised_by_gmin() {
        // A node connected only through a capacitor has no DC path: the
        // final gmin keeps the matrix nonsingular and pins it near 0 V.
        let mut b = CircuitBuilder::new();
        let a = b.node("a");
        let fl = b.node("float");
        b.vsource("V1", a, GROUND, Waveform::Dc(1.0)).expect("v");
        b.capacitor("C1", a, fl, 1e-12).expect("c");
        let ckt = b.build().expect("build");
        let op = dc_operating_point(&ckt, DcOptions::default()).expect("dc");
        let vf = op.solution[1];
        assert!(vf.abs() < 1e-3, "floating node pinned by gmin, got {vf}");
    }

    #[test]
    fn cancelled_budget_short_circuits_ladder() {
        // A pre-cancelled token must stop rung 1 immediately and skip the
        // gmin/source-stepping rungs: interruption is a control-plane
        // outcome, not a convergence failure to be retried.
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let anode = b.node("a");
        b.vsource("V1", inp, GROUND, Waveform::Dc(5.0)).expect("v");
        b.resistor("R1", inp, anode, 1e3).expect("r");
        b.diode("D1", anode, GROUND, DiodeParams::default())
            .expect("d");
        let ckt = b.build().expect("build");
        let token = rfsim_numerics::CancelToken::new();
        token.cancel();
        let budget = rfsim_numerics::SolveBudget::unlimited().with_cancel(token);
        let err = dc_operating_point_budgeted(&ckt, DcOptions::default(), &budget)
            .expect_err("cancelled budget must interrupt");
        let i = err.interrupted().expect("typed interruption");
        assert_eq!(i.reason, rfsim_numerics::InterruptReason::Cancelled);
        assert_eq!(i.iterations, 0, "pre-cancelled: no iterations spent");
    }

    #[test]
    fn series_diode_chain_needs_stepping_but_solves() {
        // Stacked diodes with a large supply: hard for cold Newton.
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let m1 = b.node("m1");
        let m2 = b.node("m2");
        b.vsource("V1", inp, GROUND, Waveform::Dc(30.0)).expect("v");
        b.resistor("R1", inp, m1, 10.0).expect("r");
        b.diode("D1", m1, m2, DiodeParams::default()).expect("d1");
        b.diode("D2", m2, GROUND, DiodeParams::default())
            .expect("d2");
        let ckt = b.build().expect("build");
        let op = dc_operating_point(&ckt, DcOptions::default()).expect("dc");
        let v1 = op.solution[1] - op.solution[2];
        let v2 = op.solution[2];
        assert!((0.6..1.1).contains(&v1), "D1 drop {v1}");
        assert!((0.6..1.1).contains(&v2), "D2 drop {v2}");
    }
}
