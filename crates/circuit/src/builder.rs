//! Fluent construction of circuits.
//!
//! The builder owns the node-name table and validates device parameters;
//! [`CircuitBuilder::build`] freezes everything into an immutable
//! [`Circuit`], allocating branch-current unknowns after the node unknowns.

use std::collections::HashMap;

use crate::circuit::{Circuit, UnknownKind};
use crate::devices::{
    Bjt, BjtParams, Capacitor, Device, Diode, DiodeParams, Inductor, Isource, Mosfet, MosfetParams,
    Multiplier, Resistor, Vccs, Vcvs, Vsource,
};
use crate::node::{NodeId, GROUND};
use crate::stamp::Unknown;
use crate::waveform::SourceSpec;
use crate::{CircuitError, Result};

/// Builds a [`Circuit`] device by device.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    node_names: Vec<String>,
    node_by_name: HashMap<String, NodeId>,
    devices: Vec<Box<dyn Device>>,
    device_names: HashMap<String, usize>,
}

impl CircuitBuilder {
    /// Creates an empty builder (ground is pre-registered).
    pub fn new() -> Self {
        let mut b = CircuitBuilder {
            node_names: vec!["gnd".to_string()],
            node_by_name: HashMap::new(),
            devices: Vec::new(),
            device_names: HashMap::new(),
        };
        b.node_by_name.insert("gnd".into(), GROUND);
        b.node_by_name.insert("0".into(), GROUND);
        b
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"gnd"` and `"0"` refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_by_name.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.to_string());
        self.node_by_name.insert(name.to_string(), id);
        id
    }

    /// Number of non-ground nodes registered so far.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len() - 1
    }

    fn register_name(&mut self, name: &str) -> Result<()> {
        if self.device_names.contains_key(name) {
            return Err(CircuitError::BadName {
                name: name.to_string(),
                context: "device name already in use".into(),
            });
        }
        self.device_names
            .insert(name.to_string(), self.devices.len());
        Ok(())
    }

    fn unknown(node: NodeId) -> Unknown {
        if node.is_ground() {
            Unknown::Ground
        } else {
            // Node k occupies unknown k−1 (ground carries none).
            Unknown::Index(node.index() - 1)
        }
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance and duplicate names.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> Result<&mut Self> {
        if !(ohms > 0.0 && ohms.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                device: name.to_string(),
                context: format!("resistance must be positive and finite, got {ohms}"),
            });
        }
        self.register_name(name)?;
        self.devices.push(Box::new(Resistor::new(
            name.to_string(),
            Self::unknown(a),
            Self::unknown(b),
            ohms,
        )));
        Ok(self)
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite capacitance and duplicate names.
    pub fn capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<&mut Self> {
        if !(farads >= 0.0 && farads.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                device: name.to_string(),
                context: format!("capacitance must be non-negative, got {farads}"),
            });
        }
        self.register_name(name)?;
        self.devices.push(Box::new(Capacitor::new(
            name.to_string(),
            Self::unknown(a),
            Self::unknown(b),
            farads,
        )));
        Ok(self)
    }

    /// Adds an inductor (allocates a branch-current unknown).
    ///
    /// # Errors
    ///
    /// Rejects non-positive inductance and duplicate names.
    pub fn inductor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
    ) -> Result<&mut Self> {
        if !(henries > 0.0 && henries.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                device: name.to_string(),
                context: format!("inductance must be positive, got {henries}"),
            });
        }
        self.register_name(name)?;
        self.devices.push(Box::new(Inductor::new(
            name.to_string(),
            Self::unknown(a),
            Self::unknown(b),
            henries,
        )));
        Ok(self)
    }

    /// Adds an independent voltage source from `p` to `n`
    /// (allocates a branch-current unknown).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn vsource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        spec: impl Into<SourceSpec>,
    ) -> Result<&mut Self> {
        self.register_name(name)?;
        self.devices.push(Box::new(Vsource::new(
            name.to_string(),
            Self::unknown(p),
            Self::unknown(n),
            spec.into(),
        )));
        Ok(self)
    }

    /// Adds an independent current source driving from `p` through the
    /// source to `n`.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn isource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        spec: impl Into<SourceSpec>,
    ) -> Result<&mut Self> {
        self.register_name(name)?;
        self.devices.push(Box::new(Isource::new(
            name.to_string(),
            Self::unknown(p),
            Self::unknown(n),
            spec.into(),
        )));
        Ok(self)
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn vccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<&mut Self> {
        self.register_name(name)?;
        self.devices.push(Box::new(Vccs::new(
            name.to_string(),
            Self::unknown(p),
            Self::unknown(n),
            Self::unknown(cp),
            Self::unknown(cn),
            gm,
        )));
        Ok(self)
    }

    /// Adds a voltage-controlled voltage source (allocates a branch).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<&mut Self> {
        self.register_name(name)?;
        self.devices.push(Box::new(Vcvs::new(
            name.to_string(),
            Self::unknown(p),
            Self::unknown(n),
            Self::unknown(cp),
            Self::unknown(cn),
            gain,
        )));
        Ok(self)
    }

    /// Adds a behavioural multiplier: current `K·v_x·v_y` from `p` to `n`.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    #[allow(clippy::too_many_arguments)]
    pub fn multiplier(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        xp: NodeId,
        xn: NodeId,
        yp: NodeId,
        yn: NodeId,
        gain: f64,
    ) -> Result<&mut Self> {
        self.register_name(name)?;
        self.devices.push(Box::new(Multiplier::new(
            name.to_string(),
            Self::unknown(p),
            Self::unknown(n),
            Self::unknown(xp),
            Self::unknown(xn),
            Self::unknown(yp),
            Self::unknown(yn),
            gain,
        )));
        Ok(self)
    }

    /// Adds a junction diode from `anode` to `cathode`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive saturation current and duplicate names.
    pub fn diode(
        &mut self,
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        params: DiodeParams,
    ) -> Result<&mut Self> {
        if !(params.is > 0.0 && params.n > 0.0) {
            return Err(CircuitError::InvalidParameter {
                device: name.to_string(),
                context: format!(
                    "Is and n must be positive, got Is={} n={}",
                    params.is, params.n
                ),
            });
        }
        self.register_name(name)?;
        self.devices.push(Box::new(Diode::new(
            name.to_string(),
            Self::unknown(anode),
            Self::unknown(cathode),
            params,
        )));
        Ok(self)
    }

    /// Adds a level-1 MOSFET with terminals (drain, gate, source).
    ///
    /// # Errors
    ///
    /// Rejects non-positive `kp`, `w` or `l` and duplicate names.
    pub fn mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        params: MosfetParams,
    ) -> Result<&mut Self> {
        if !(params.kp > 0.0 && params.w > 0.0 && params.l > 0.0) {
            return Err(CircuitError::InvalidParameter {
                device: name.to_string(),
                context: format!(
                    "kp, w, l must be positive, got kp={} w={} l={}",
                    params.kp, params.w, params.l
                ),
            });
        }
        self.register_name(name)?;
        self.devices.push(Box::new(Mosfet::new(
            name.to_string(),
            Self::unknown(drain),
            Self::unknown(gate),
            Self::unknown(source),
            params,
        )));
        Ok(self)
    }

    /// Adds an Ebers–Moll BJT with terminals (collector, base, emitter).
    ///
    /// # Errors
    ///
    /// Rejects non-positive `is` or gains, and duplicate names.
    pub fn bjt(
        &mut self,
        name: &str,
        collector: NodeId,
        base: NodeId,
        emitter: NodeId,
        params: BjtParams,
    ) -> Result<&mut Self> {
        if !(params.is > 0.0 && params.beta_f > 0.0 && params.beta_r > 0.0) {
            return Err(CircuitError::InvalidParameter {
                device: name.to_string(),
                context: format!(
                    "Is, beta_f, beta_r must be positive, got Is={} bf={} br={}",
                    params.is, params.beta_f, params.beta_r
                ),
            });
        }
        self.register_name(name)?;
        self.devices.push(Box::new(Bjt::new(
            name.to_string(),
            Self::unknown(collector),
            Self::unknown(base),
            Self::unknown(emitter),
            params,
        )));
        Ok(self)
    }

    /// Freezes the builder into an immutable [`Circuit`], allocating branch
    /// unknowns after the node unknowns.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Structural`] for an empty circuit.
    pub fn build(mut self) -> Result<Circuit> {
        if self.devices.is_empty() {
            return Err(CircuitError::Structural {
                context: "circuit has no devices".into(),
            });
        }
        let num_node_unknowns = self.node_names.len() - 1;
        let mut kinds = vec![UnknownKind::NodeVoltage; num_node_unknowns];
        let mut names: Vec<String> = self.node_names[1..].to_vec();
        let mut next = num_node_unknowns;
        for dev in self.devices.iter_mut() {
            let nb = dev.num_branches();
            if nb > 0 {
                let branches: Vec<usize> = (next..next + nb).collect();
                dev.assign_branches(&branches);
                for k in 0..nb {
                    kinds.push(UnknownKind::BranchCurrent);
                    names.push(format!(
                        "i({}){}",
                        dev.name(),
                        if nb > 1 {
                            format!("#{k}")
                        } else {
                            String::new()
                        }
                    ));
                }
                next += nb;
            }
        }
        Ok(Circuit::new(self.devices, names, kinds, self.node_by_name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn node_names_resolve_and_dedupe() {
        let mut b = CircuitBuilder::new();
        let a1 = b.node("a");
        let a2 = b.node("a");
        assert_eq!(a1, a2);
        assert_eq!(b.node("gnd"), GROUND);
        assert_eq!(b.node("0"), GROUND);
        assert_eq!(b.num_nodes(), 1);
    }

    #[test]
    fn duplicate_device_names_rejected() {
        let mut b = CircuitBuilder::new();
        let n = b.node("a");
        b.resistor("R1", n, GROUND, 1.0).expect("first ok");
        assert!(matches!(
            b.resistor("R1", n, GROUND, 2.0),
            Err(CircuitError::BadName { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut b = CircuitBuilder::new();
        let n = b.node("a");
        assert!(b.resistor("R1", n, GROUND, -5.0).is_err());
        assert!(b.resistor("R2", n, GROUND, 0.0).is_err());
        assert!(b.capacitor("C1", n, GROUND, -1e-12).is_err());
        assert!(b.inductor("L1", n, GROUND, 0.0).is_err());
        assert!(b
            .mosfet(
                "M1",
                n,
                n,
                GROUND,
                MosfetParams {
                    kp: -1.0,
                    ..Default::default()
                }
            )
            .is_err());
    }

    #[test]
    fn empty_circuit_rejected() {
        assert!(CircuitBuilder::new().build().is_err());
    }

    #[test]
    fn branch_unknowns_follow_nodes() {
        let mut b = CircuitBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        b.vsource("V1", a, GROUND, Waveform::Dc(1.0)).expect("v");
        b.resistor("R1", a, c, 1e3).expect("r");
        b.inductor("L1", c, GROUND, 1e-6).expect("l");
        let ckt = b.build().expect("build");
        // 2 node unknowns + 2 branch unknowns (V source + inductor).
        assert_eq!(ckt.num_unknowns(), 4);
        assert_eq!(ckt.unknown_kinds()[0], UnknownKind::NodeVoltage);
        assert_eq!(ckt.unknown_kinds()[2], UnknownKind::BranchCurrent);
    }
}
