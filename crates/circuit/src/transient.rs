//! Transient analysis: adaptive implicit time stepping.
//!
//! Integrates `d/dt q(x) + f(x) + b(t) = 0` from a DC operating point with
//! backward Euler, trapezoidal, or BDF2 discretisations and a predictor
//! based local-truncation-error step controller. This is the reference
//! engine that the paper's baseline (single-time shooting over a difference
//! period) is built on — and the thing the MPDE method replaces with a
//! small multitime grid.

use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::SolveBudget;

use crate::circuit::Circuit;
use crate::dcop::{dc_operating_point_budgeted, DcOptions};
use crate::driver::NewtonDriver;
use crate::newton::{LinearSolverWorkspace, NewtonOptions, NewtonSystem};
use crate::{CircuitError, Result};

/// Implicit integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order backward Euler: robust, strongly damped.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule: accurate, marginally stable
    /// (can ring on stiff switching circuits).
    Trapezoidal,
    /// Second-order BDF: damped and accurate; uses variable-step
    /// coefficients.
    Bdf2,
}

/// Options for [`transient`].
#[derive(Debug, Clone, Copy)]
pub struct TransientOptions {
    /// End time of the simulation (starts at `t = 0`).
    pub t_stop: f64,
    /// Initial step size.
    pub dt_init: f64,
    /// Smallest permitted step.
    pub dt_min: f64,
    /// Largest permitted step (0 = `t_stop / 50`).
    pub dt_max: f64,
    /// Integration scheme.
    pub integrator: Integrator,
    /// Use the LTE step controller (false = fixed step `dt_init`).
    pub adaptive: bool,
    /// LTE tolerance in weighted-update units.
    pub lte_tol: f64,
    /// Newton options for each step.
    pub newton: NewtonOptions,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            t_stop: 1e-3,
            dt_init: 1e-6,
            dt_min: 1e-15,
            dt_max: 0.0,
            integrator: Integrator::default(),
            adaptive: true,
            lte_tol: 10.0,
            newton: NewtonOptions::default(),
        }
    }
}

/// Result of a transient run: uniform access to the state trajectory.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Time points (strictly increasing, starting at 0).
    pub times: Vec<f64>,
    /// Flattened states: `states[k * n .. (k+1) * n]` is the state at
    /// `times[k]`.
    pub states: Vec<f64>,
    /// Number of unknowns per state.
    pub num_unknowns: usize,
    /// Total Newton iterations across all steps.
    pub newton_iterations: usize,
    /// Steps rejected by the LTE controller.
    pub rejected_steps: usize,
}

impl TransientResult {
    /// State vector at output index `k`.
    pub fn state(&self, k: usize) -> &[f64] {
        &self.states[k * self.num_unknowns..(k + 1) * self.num_unknowns]
    }

    /// Trajectory of a single unknown.
    pub fn signal(&self, unknown: usize) -> Vec<f64> {
        (0..self.times.len())
            .map(|k| self.state(k)[unknown])
            .collect()
    }

    /// Linear interpolation of unknown `unknown` at time `t` (clamped).
    pub fn sample(&self, unknown: usize, t: f64) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        if t <= self.times[0] {
            return self.state(0)[unknown];
        }
        let last = self.times.len() - 1;
        if t >= self.times[last] {
            return self.state(last)[unknown];
        }
        let idx = self.times.partition_point(|&tt| tt <= t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.state(idx - 1)[unknown], self.state(idx)[unknown]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Number of accepted time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trajectory is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// One implicit step's nonlinear system.
struct StepSystem<'a> {
    circuit: &'a Circuit,
    /// Coefficient of `q(x)` in the discretised derivative.
    alpha0: f64,
    /// Precomputed history part of the derivative plus `f`/`b` history:
    /// residual = alpha0·q(x) + hist + f(x) + θ·b(t_{n+1}).
    hist: &'a [f64],
    /// Weight of the implicit conductive term (1 for BE/BDF2, ½ for TR).
    theta: f64,
    b_new: &'a [f64],
}

impl NewtonSystem for StepSystem<'_> {
    fn dim(&self) -> usize {
        self.circuit.num_unknowns()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut q = vec![0.0; n];
        self.circuit.eval_q(x, &mut q, None);
        self.circuit.eval_f(x, out, None);
        for i in 0..n {
            out[i] = self.alpha0 * q[i] + self.hist[i] + self.theta * (out[i] + self.b_new[i]);
        }
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        let n = out.len();
        // Assemble θ·G + α0·C by scaling triplet batches.
        let mut g = Triplets::with_capacity(n, n, 8 * n);
        let mut c = Triplets::with_capacity(n, n, 8 * n);
        let mut q = vec![0.0; n];
        self.circuit.eval_f(x, out, Some(&mut g));
        self.circuit.eval_q(x, &mut q, Some(&mut c));
        for i in 0..n {
            out[i] = self.alpha0 * q[i] + self.hist[i] + self.theta * (out[i] + self.b_new[i]);
        }
        let gm = g.to_csr();
        for row in 0..n {
            let (cols, vals) = gm.row(row);
            for (col, v) in cols.iter().zip(vals) {
                jac.push(row, *col, self.theta * v);
            }
        }
        let cm = c.to_csr();
        for row in 0..n {
            let (cols, vals) = cm.row(row);
            for (col, v) in cols.iter().zip(vals) {
                jac.push(row, *col, self.alpha0 * v);
            }
        }
    }
}

/// Runs a transient analysis from the DC operating point (or a caller
/// supplied initial state via [`transient_from`]).
///
/// # Errors
///
/// Propagates DC and Newton failures; fails if the controller cannot make
/// progress at `dt_min`.
pub fn transient(circuit: &Circuit, options: TransientOptions) -> Result<TransientResult> {
    transient_budgeted(circuit, options, &SolveBudget::unlimited())
}

/// [`transient`] under a [`SolveBudget`]: the budget covers the initial
/// DC solve and every timestep's Newton solve. An interruption aborts the
/// run instead of triggering the step-halving retry.
///
/// # Errors
///
/// [`CircuitError::Interrupted`] when the budget stops a solve, plus
/// everything [`transient`] returns.
pub fn transient_budgeted(
    circuit: &Circuit,
    options: TransientOptions,
    budget: &SolveBudget,
) -> Result<TransientResult> {
    let op = dc_operating_point_budgeted(
        circuit,
        DcOptions {
            newton: options.newton,
            ..Default::default()
        },
        budget,
    )?;
    transient_from_budgeted(circuit, op.solution, options, budget)
}

/// Runs a transient analysis from a given initial state.
///
/// # Errors
///
/// See [`transient`].
pub fn transient_from(
    circuit: &Circuit,
    initial_state: Vec<f64>,
    options: TransientOptions,
) -> Result<TransientResult> {
    transient_from_budgeted(circuit, initial_state, options, &SolveBudget::unlimited())
}

/// [`transient_from`] under a [`SolveBudget`].
///
/// # Errors
///
/// See [`transient_budgeted`].
pub fn transient_from_budgeted(
    circuit: &Circuit,
    initial_state: Vec<f64>,
    options: TransientOptions,
    budget: &SolveBudget,
) -> Result<TransientResult> {
    let n = circuit.num_unknowns();
    if initial_state.len() != n {
        return Err(CircuitError::Structural {
            context: format!(
                "initial state has {} entries for {} unknowns",
                initial_state.len(),
                n
            ),
        });
    }
    let kinds = circuit.unknown_kinds().to_vec();
    let dt_max = if options.dt_max > 0.0 {
        options.dt_max
    } else {
        options.t_stop / 50.0
    };

    let mut result = TransientResult {
        times: vec![0.0],
        states: initial_state.clone(),
        num_unknowns: n,
        newton_iterations: 0,
        rejected_steps: 0,
    };

    let mut x = initial_state;
    let mut t = 0.0;
    let mut dt = options.dt_init.min(dt_max);
    // One linear-solver workspace for the whole run: the step system's
    // Jacobian pattern is fixed, so after the first step every timestep's
    // Newton iterations are in-place assemblies + numeric refactorisations.
    let mut workspace = LinearSolverWorkspace::new();

    // History state for the integrators.
    let mut q_prev = vec![0.0; n];
    circuit.eval_q(&x, &mut q_prev, None);
    let mut fb_prev = vec![0.0; n]; // f(x_n) + b(t_n), for TR
    {
        let mut b0 = vec![0.0; n];
        circuit.eval_b(t, &mut b0);
        circuit.eval_f(&x, &mut fb_prev, None);
        for i in 0..n {
            fb_prev[i] += b0[i];
        }
    }
    // BDF2 history: previous charge and step.
    let mut q_prev2: Option<(Vec<f64>, f64)> = None;
    // Predictor history.
    let mut x_prev: Option<(Vec<f64>, f64)> = None;

    while t < options.t_stop - 1e-15 * options.t_stop {
        dt = dt.min(options.t_stop - t).min(dt_max);
        let t_new = t + dt;

        let mut b_new = vec![0.0; n];
        circuit.eval_b(t_new, &mut b_new);

        // Build the step system for the chosen scheme.
        let (alpha0, theta, hist) = match options.integrator {
            Integrator::BackwardEuler => {
                let hist: Vec<f64> = q_prev.iter().map(|q| -q / dt).collect();
                (1.0 / dt, 1.0, hist)
            }
            Integrator::Trapezoidal => {
                // 2(q − q_n)/dt − q̇_n + ... with q̇_n = −(f_n + b_n):
                // residual = 2/dt·q(x) − 2/dt·q_n + (f_n + b_n)·? …
                // Standard TR: (q−q_n)/dt + ½(f+b)_{n+1} + ½(f+b)_n = 0.
                let hist: Vec<f64> = q_prev
                    .iter()
                    .zip(&fb_prev)
                    .map(|(q, fb)| -q / dt + 0.5 * fb)
                    .collect();
                (1.0 / dt, 0.5, hist)
            }
            Integrator::Bdf2 => {
                if let Some((q2, dt_prev)) = &q_prev2 {
                    // Variable-step BDF2 coefficients.
                    let rho = dt / dt_prev;
                    let a0 = (1.0 + 2.0 * rho) / (dt * (1.0 + rho));
                    let a1 = -(1.0 + rho) / dt;
                    let a2 = rho * rho / (dt * (1.0 + rho));
                    let hist: Vec<f64> = q_prev
                        .iter()
                        .zip(q2)
                        .map(|(q1, q2v)| a1 * q1 + a2 * q2v)
                        .collect();
                    (a0, 1.0, hist)
                } else {
                    // First step: backward Euler.
                    let hist: Vec<f64> = q_prev.iter().map(|q| -q / dt).collect();
                    (1.0 / dt, 1.0, hist)
                }
            }
        };

        let sys = StepSystem {
            circuit,
            alpha0,
            hist: &hist,
            theta,
            b_new: &b_new,
        };

        // Predict the new state by linear extrapolation (for the initial
        // Newton guess and the LTE estimate).
        let prediction: Vec<f64> = match &x_prev {
            Some((xp, dtp)) => {
                let r = dt / dtp;
                x.iter()
                    .zip(xp)
                    .map(|(xc, xo)| xc + (xc - xo) * r)
                    .collect()
            }
            None => x.clone(),
        };

        // Per-timestep recovery is dt halving (below), not a rung
        // ladder; the driver still owns the solve so rung accounting and
        // progress staging stay uniform across backends.
        match NewtonDriver::new(options.newton).solve(
            &sys,
            &prediction,
            &kinds,
            &mut workspace,
            budget,
        ) {
            Ok((x_new, stats)) => {
                result.newton_iterations += stats.iterations;
                // LTE estimate: deviation from the predictor in weighted units.
                if options.adaptive && x_prev.is_some() {
                    let lte = x_new
                        .iter()
                        .zip(&prediction)
                        .zip(&x_new)
                        .map(|((xn, xp), xref)| {
                            (xn - xp).abs()
                                / (options.newton.reltol * xref.abs() + options.newton.abstol_v)
                        })
                        .fold(0.0_f64, f64::max);
                    if lte > 4.0 * options.lte_tol && dt > options.dt_min {
                        result.rejected_steps += 1;
                        dt = (dt * 0.5).max(options.dt_min);
                        continue;
                    }
                    // Step-size update for next step.
                    let order = match options.integrator {
                        Integrator::BackwardEuler => 1.0,
                        _ => 2.0,
                    };
                    let ratio = (options.lte_tol / lte.max(1e-12)).powf(1.0 / (order + 1.0));
                    dt = (dt * ratio.clamp(0.3, 2.0)).clamp(options.dt_min, dt_max);
                }

                // Accept.
                q_prev2 = Some((q_prev.clone(), dt.max(options.dt_min)));
                circuit.eval_q(&x_new, &mut q_prev, None);
                {
                    let mut fnew = vec![0.0; n];
                    circuit.eval_f(&x_new, &mut fnew, None);
                    for i in 0..n {
                        fb_prev[i] = fnew[i] + b_new[i];
                    }
                }
                x_prev = Some((x.clone(), t_new - t));
                x = x_new;
                t = t_new;
                result.times.push(t);
                result.states.extend_from_slice(&x);
            }
            Err(e) => {
                // A budget interruption is a control-plane stop: halving
                // dt would just re-run the interrupted solve.
                if e.is_interrupted() || dt <= options.dt_min * 1.0001 {
                    return Err(e);
                }
                result.rejected_steps += 1;
                dt = (dt * 0.25).max(options.dt_min);
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::node::GROUND;
    use crate::waveform::Waveform;

    fn rc_circuit(r: f64, c: f64, v: Waveform) -> (Circuit, usize) {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("V1", inp, GROUND, v).expect("v");
        b.resistor("R1", inp, out, r).expect("r");
        b.capacitor("C1", out, GROUND, c).expect("c");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        (ckt, out_idx)
    }

    #[test]
    fn rc_step_response_be() {
        // Step from 0 to 1 V through R=1k, C=1µ: v(t) = 1 − e^{−t/τ}, τ=1ms.
        let (ckt, out) = rc_circuit(
            1e3,
            1e-6,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: 0.0,
            },
        );
        let res = transient(
            &ckt,
            TransientOptions {
                t_stop: 3e-3,
                dt_init: 1e-6,
                integrator: Integrator::BackwardEuler,
                ..Default::default()
            },
        )
        .expect("transient");
        let tau: f64 = 1e-3;
        for &t in &[0.5e-3_f64, 1e-3, 2e-3] {
            let expect = 1.0 - (-t / tau).exp();
            let got = res.sample(out, t);
            assert!(
                (got - expect).abs() < 0.02,
                "t={t}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn rc_sine_steady_state_amplitude_tr() {
        // At f = 1/(2πRC), |H| = 1/√2.
        let r = 1e3;
        let c = 1e-6;
        let f = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let (ckt, out) = rc_circuit(r, c, Waveform::sine(1.0, f));
        let res = transient(
            &ckt,
            TransientOptions {
                t_stop: 20.0 / f,
                dt_init: 1e-2 / f,
                dt_max: 2e-2 / f,
                integrator: Integrator::Trapezoidal,
                ..Default::default()
            },
        )
        .expect("transient");
        // Amplitude over the last 2 periods.
        let t0 = 18.0 / f;
        let mut peak = 0.0f64;
        for k in 0..res.len() {
            if res.times[k] > t0 {
                peak = peak.max(res.state(k)[out].abs());
            }
        }
        assert!(
            (peak - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.03,
            "corner gain: got {peak}"
        );
    }

    #[test]
    fn lc_oscillation_frequency_bdf2() {
        // Series RLC ringing: f0 = 1/(2π√(LC)) with light damping.
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let mid = b.node("mid");
        b.vsource(
            "V1",
            inp,
            GROUND,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: 0.0,
            },
        )
        .expect("v");
        b.resistor("R1", inp, mid, 10.0).expect("r");
        let cap = b.node("cap");
        b.inductor("L1", mid, cap, 1e-3).expect("l");
        b.capacitor("C1", cap, GROUND, 1e-9).expect("c");
        let ckt = b.build().expect("build");
        let out = ckt.unknown_index_of_node(cap).expect("idx");
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3f64 * 1e-9).sqrt());
        let res = transient(
            &ckt,
            TransientOptions {
                t_stop: 5.0 / f0,
                dt_init: 0.002 / f0,
                dt_max: 0.01 / f0,
                integrator: Integrator::Bdf2,
                ..Default::default()
            },
        )
        .expect("transient");
        // Find first two upward zero crossings of (v − 1) after t > 0.5/f0.
        let sig = res.signal(out);
        let mut crossings = Vec::new();
        for k in 1..res.len() {
            if res.times[k] < 0.2 / f0 {
                continue;
            }
            let (a, b2) = (sig[k - 1] - 1.0, sig[k] - 1.0);
            if a < 0.0 && b2 >= 0.0 {
                let frac = a / (a - b2);
                crossings.push(res.times[k - 1] + frac * (res.times[k] - res.times[k - 1]));
            }
        }
        assert!(
            crossings.len() >= 2,
            "need 2 crossings, got {}",
            crossings.len()
        );
        let period = crossings[1] - crossings[0];
        let f_meas = 1.0 / period;
        assert!(
            (f_meas - f0).abs() / f0 < 0.05,
            "ring frequency {f_meas} vs {f0}"
        );
    }

    #[test]
    fn fixed_step_mode_counts_steps() {
        let (ckt, _) = rc_circuit(1e3, 1e-9, Waveform::Dc(1.0));
        let res = transient(
            &ckt,
            TransientOptions {
                t_stop: 1e-6,
                dt_init: 1e-8,
                adaptive: false,
                ..Default::default()
            },
        )
        .expect("transient");
        assert_eq!(res.len(), 101, "100 fixed steps + initial point");
    }

    #[test]
    fn initial_state_mismatch_rejected() {
        let (ckt, _) = rc_circuit(1e3, 1e-9, Waveform::Dc(1.0));
        assert!(transient_from(&ckt, vec![0.0; 1], TransientOptions::default()).is_err());
    }

    #[test]
    fn cancelled_budget_stops_run_without_step_halving() {
        let (ckt, _) = rc_circuit(1e3, 1e-9, Waveform::Dc(1.0));
        let token = rfsim_numerics::CancelToken::new();
        token.cancel();
        let budget = rfsim_numerics::SolveBudget::unlimited().with_cancel(token);
        let err = transient_budgeted(&ckt, TransientOptions::default(), &budget)
            .expect_err("cancelled budget must interrupt");
        assert!(err.is_interrupted(), "typed interruption, got: {err}");
    }

    #[test]
    fn sample_clamps_and_interpolates() {
        let r = TransientResult {
            times: vec![0.0, 1.0],
            states: vec![0.0, 10.0],
            num_unknowns: 1,
            newton_iterations: 0,
            rejected_steps: 0,
        };
        assert_eq!(r.sample(0, -1.0), 0.0);
        assert_eq!(r.sample(0, 2.0), 10.0);
        assert!((r.sample(0, 0.5) - 5.0).abs() < 1e-12);
    }
}
