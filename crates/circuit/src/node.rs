//! Node identifiers and the ground convention.

/// Identifies a circuit node. Node 0 is ground ([`GROUND`]); all other nodes
/// carry a voltage unknown in the MNA system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// The ground (reference) node: its voltage is identically zero and it
/// carries no unknown.
pub const GROUND: NodeId = NodeId(0);

impl NodeId {
    /// Whether this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// The raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_ground() {
        assert!(GROUND.is_ground());
        assert_eq!(GROUND.index(), 0);
        assert_eq!(GROUND.to_string(), "gnd");
    }

    #[test]
    fn display_regular_node() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
