//! Stamping context handed to devices during assembly.
//!
//! A device contributes to the residuals `f(x)` / `q(x)` and their Jacobians
//! `G = ∂f/∂x`, `C = ∂q/∂x`. The context hides the "is this node ground?"
//! bookkeeping: stamps against ground are silently dropped, exactly as in
//! classical MNA assembly.

use rfsim_numerics::sparse::Triplets;

/// Index of an unknown in the MNA vector, or ground (no unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unknown {
    /// A real unknown at the given index.
    Index(usize),
    /// The ground reference: stamps are dropped.
    Ground,
}

impl Unknown {
    /// The index if this is a real unknown.
    pub fn index(self) -> Option<usize> {
        match self {
            Unknown::Index(i) => Some(i),
            Unknown::Ground => None,
        }
    }
}

/// Mutable assembly state for one residual/Jacobian evaluation.
///
/// The same type serves the resistive (`f`, `G`) and reactive (`q`, `C`)
/// passes; the [`crate::circuit::Circuit`] drives devices twice.
pub struct StampContext<'a> {
    residual: &'a mut [f64],
    jacobian: Option<&'a mut Triplets>,
}

impl<'a> StampContext<'a> {
    /// Creates a context writing into `residual` and (optionally) a Jacobian
    /// triplet builder.
    pub fn new(residual: &'a mut [f64], jacobian: Option<&'a mut Triplets>) -> Self {
        StampContext { residual, jacobian }
    }

    /// Reads the voltage/current value of an unknown from the solution
    /// vector `x` (0 for ground).
    #[inline]
    pub fn value(x: &[f64], u: Unknown) -> f64 {
        match u {
            Unknown::Index(i) => x[i],
            Unknown::Ground => 0.0,
        }
    }

    /// Adds `value` to the residual row of `eq`.
    #[inline]
    pub fn add_residual(&mut self, eq: Unknown, value: f64) {
        if let Unknown::Index(i) = eq {
            self.residual[i] += value;
        }
    }

    /// Adds `value` to the Jacobian entry `(eq, wrt)`.
    #[inline]
    pub fn add_jacobian(&mut self, eq: Unknown, wrt: Unknown, value: f64) {
        if let (Some(j), Unknown::Index(r), Unknown::Index(c)) =
            (self.jacobian.as_deref_mut(), eq, wrt)
        {
            j.push(r, c, value);
        }
    }

    /// Stamps a conductance-like pair contribution: a flow
    /// `g·(v_a − v_b)` leaving node `a` and entering node `b`,
    /// including all four Jacobian entries.
    pub fn stamp_conductance(&mut self, a: Unknown, b: Unknown, g: f64, x: &[f64]) {
        let v = Self::value(x, a) - Self::value(x, b);
        self.add_residual(a, g * v);
        self.add_residual(b, -g * v);
        self.add_jacobian(a, a, g);
        self.add_jacobian(a, b, -g);
        self.add_jacobian(b, a, -g);
        self.add_jacobian(b, b, g);
    }

    /// Stamps a nonlinear two-terminal current `i(v)` with derivative
    /// `di/dv = g` flowing from `a` to `b`.
    pub fn stamp_current_pair(&mut self, a: Unknown, b: Unknown, current: f64, g: f64) {
        self.add_residual(a, current);
        self.add_residual(b, -current);
        self.add_jacobian(a, a, g);
        self.add_jacobian(a, b, -g);
        self.add_jacobian(b, a, -g);
        self.add_jacobian(b, b, g);
    }

    /// Whether a Jacobian is being assembled in this pass.
    pub fn wants_jacobian(&self) -> bool {
        self.jacobian.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_stamps_dropped() {
        let mut r = vec![0.0; 2];
        let mut j = Triplets::new(2, 2);
        let mut ctx = StampContext::new(&mut r, Some(&mut j));
        ctx.add_residual(Unknown::Ground, 5.0);
        ctx.add_jacobian(Unknown::Ground, Unknown::Index(0), 1.0);
        ctx.add_jacobian(Unknown::Index(0), Unknown::Ground, 1.0);
        assert_eq!(r, vec![0.0, 0.0]);
        assert!(j.is_empty());
    }

    #[test]
    fn conductance_stamp_pattern() {
        let x = vec![2.0, 0.5];
        let mut r = vec![0.0; 2];
        let mut j = Triplets::new(2, 2);
        {
            let mut ctx = StampContext::new(&mut r, Some(&mut j));
            ctx.stamp_conductance(Unknown::Index(0), Unknown::Index(1), 0.1, &x);
        }
        // current 0.1·(2.0−0.5) = 0.15 leaves node 0, enters node 1
        assert!((r[0] - 0.15).abs() < 1e-15);
        assert!((r[1] + 0.15).abs() < 1e-15);
        let m = j.to_csr();
        assert_eq!(m.get(0, 0), 0.1);
        assert_eq!(m.get(0, 1), -0.1);
        assert_eq!(m.get(1, 0), -0.1);
        assert_eq!(m.get(1, 1), 0.1);
    }

    #[test]
    fn conductance_to_ground() {
        let x = vec![3.0];
        let mut r = vec![0.0; 1];
        {
            let mut ctx = StampContext::new(&mut r, None);
            ctx.stamp_conductance(Unknown::Index(0), Unknown::Ground, 2.0, &x);
            assert!(!ctx.wants_jacobian());
        }
        assert!((r[0] - 6.0).abs() < 1e-15);
    }

    #[test]
    fn value_of_ground_is_zero() {
        assert_eq!(StampContext::value(&[7.0], Unknown::Ground), 0.0);
        assert_eq!(StampContext::value(&[7.0], Unknown::Index(0)), 7.0);
    }
}
