//! Source waveforms: single-time, and bivariate (multi-time) forms.
//!
//! The MPDE method's central object is the *bivariate representation* of an
//! excitation: a function `b̂(t1, t2)`, periodic in both arguments, with
//! `b̂(t, t) = b(t)`. [`BiWaveform`] encodes the representations used in the
//! paper — axis-aligned tones and the **sheared carrier** of eq. (11)/(13),
//! `A·cos(2π(k·f1·t1 − fd·t2) + φ)·m(fd·t2)`, whose diagonal is a modulated
//! tone at `f2 = k·f1 − fd`.
//!
//! Consistency by construction: a [`SourceSpec`] built from a `BiWaveform`
//! *derives* its single-time waveform from the diagonal, so transient and
//! MPDE analyses always see the same physical stimulus.

use std::f64::consts::PI;
use std::sync::Arc;

/// A scalar function of time, driving an independent source.
#[derive(Clone)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `offset + amplitude·sin(2π·freq·t + phase)`.
    Sine {
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Phase in radians.
        phase: f64,
        /// DC offset.
        offset: f64,
    },
    /// SPICE-style trapezoidal pulse train.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time.
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Width of the pulsed phase.
        width: f64,
        /// Repetition period (0 = single pulse).
        period: f64,
    },
    /// Piecewise-linear `(time, value)` points; clamped outside the range.
    Pwl(Arc<Vec<(f64, f64)>>),
    /// Arbitrary user function.
    Custom(Arc<dyn Fn(f64) -> f64 + Send + Sync>),
}

impl std::fmt::Debug for Waveform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Waveform::Dc(v) => write!(f, "Dc({v})"),
            Waveform::Sine {
                amplitude,
                freq,
                phase,
                offset,
            } => write!(f, "Sine(a={amplitude}, f={freq}, ph={phase}, off={offset})"),
            Waveform::Pulse { v1, v2, .. } => write!(f, "Pulse({v1}→{v2})"),
            Waveform::Pwl(pts) => write!(f, "Pwl({} points)", pts.len()),
            Waveform::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl Waveform {
    /// Zero-phase, zero-offset sine of given amplitude and frequency.
    pub fn sine(amplitude: f64, freq: f64) -> Self {
        Waveform::Sine {
            amplitude,
            freq,
            phase: 0.0,
            offset: 0.0,
        }
    }

    /// Cosine of given amplitude and frequency (sine with +90° phase).
    pub fn cosine(amplitude: f64, freq: f64) -> Self {
        Waveform::Sine {
            amplitude,
            freq,
            phase: PI / 2.0,
            offset: 0.0,
        }
    }

    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Sine {
                amplitude,
                freq,
                phase,
                offset,
            } => offset + amplitude * (2.0 * PI * freq * t + phase).sin(),
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                let mut tau = t - delay;
                if tau < 0.0 {
                    return *v1;
                }
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    let frac = if *rise > 0.0 { tau / rise } else { 1.0 };
                    v1 + (v2 - v1) * frac
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    let frac = if *fall > 0.0 {
                        (tau - rise - width) / fall
                    } else {
                        1.0
                    };
                    v2 + (v1 - v2) * frac
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let idx = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            Waveform::Custom(f) => f(t),
        }
    }

    /// Whether the waveform is constant in time.
    pub fn is_dc(&self) -> bool {
        matches!(self, Waveform::Dc(_))
    }
}

/// A 1-periodic modulation envelope `m(u)`, used to modulate the sheared
/// carrier (the paper's bit-stream "tones", eq. 14).
#[derive(Clone)]
pub enum Envelope {
    /// Constant unit envelope: a pure tone.
    Unit,
    /// Antipodal (±1) bit sequence, one period spans all bits, with
    /// raised-cosine transitions of the given fractional width (0..0.5).
    Bits {
        /// The bit pattern, e.g. `vec![true, false, true, true]`.
        pattern: Arc<Vec<bool>>,
        /// Fraction of a bit slot spent in each transition edge.
        edge_fraction: f64,
    },
    /// Arbitrary 1-periodic function of the normalised argument `u ∈ [0,1)`.
    Custom(Arc<dyn Fn(f64) -> f64 + Send + Sync>),
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Envelope::Unit => write!(f, "Unit"),
            Envelope::Bits { pattern, .. } => write!(f, "Bits({} bits)", pattern.len()),
            Envelope::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl Envelope {
    /// Antipodal bit envelope with raised-cosine edges.
    pub fn bits(pattern: Vec<bool>, edge_fraction: f64) -> Self {
        Envelope::Bits {
            pattern: Arc::new(pattern),
            edge_fraction: edge_fraction.clamp(0.0, 0.5),
        }
    }

    /// Evaluates the envelope at normalised position `u` (wrapped into
    /// `[0, 1)`).
    pub fn eval(&self, u: f64) -> f64 {
        let u = u - u.floor();
        match self {
            Envelope::Unit => 1.0,
            Envelope::Bits {
                pattern,
                edge_fraction,
            } => {
                let nb = pattern.len();
                if nb == 0 {
                    return 1.0;
                }
                let pos = u * nb as f64;
                let slot = (pos.floor() as usize) % nb;
                let frac = pos - pos.floor();
                let cur = if pattern[slot] { 1.0 } else { -1.0 };
                let ef = *edge_fraction;
                if ef <= 0.0 {
                    return cur;
                }
                // Raised-cosine blend from the previous bit at slot start...
                if frac < ef {
                    let prev = if pattern[(slot + nb - 1) % nb] {
                        1.0
                    } else {
                        -1.0
                    };
                    let s = 0.5 * (1.0 - (PI * frac / ef).cos());
                    return prev + (cur - prev) * s;
                }
                cur
            }
            Envelope::Custom(f) => f(u),
        }
    }
}

/// A bivariate (multi-time) waveform `b̂(t1, t2)`.
///
/// Every variant satisfies the MPDE requirement `b̂(t, t) = b(t)` for the
/// single-time waveform returned by [`BiWaveform::diagonal`].
#[derive(Clone, Debug)]
pub enum BiWaveform {
    /// Depends on the fast axis only: `b̂(t1, t2) = w(t1)`.
    Axis1(Waveform),
    /// Depends on the slow axis only: `b̂(t1, t2) = w(t2)`.
    Axis2(Waveform),
    /// Separable product `w1(t1)·w2(t2)`.
    Product(Waveform, Waveform),
    /// The paper's sheared modulated carrier (eqs. 11, 13, 14):
    /// `A·cos(2π(k·f1·t1 − fd·t2) + φ)·m(fd·t2)`.
    ///
    /// On the diagonal `t1 = t2 = t` this is `A·cos(2π·f2·t + φ)·m(fd·t)`
    /// with `f2 = k·f1 − fd`: a carrier at `f2`, slowly modulated at the
    /// difference frequency `fd`.
    ShearedCarrier {
        /// Carrier amplitude `A`.
        amplitude: f64,
        /// Harmonic multiple `k` of the fast tone (`k = 2` for the
        /// LO-doubling mixer).
        k: u32,
        /// Fast (LO) frequency `f1` in Hz.
        f1: f64,
        /// Difference frequency `fd = k·f1 − f2` in Hz.
        fd: f64,
        /// Carrier phase `φ` in radians.
        phase: f64,
        /// 1-periodic modulation envelope evaluated at `fd·t2`.
        envelope: Envelope,
    },
}

impl BiWaveform {
    /// Evaluates `b̂(t1, t2)`.
    pub fn eval(&self, t1: f64, t2: f64) -> f64 {
        match self {
            BiWaveform::Axis1(w) => w.eval(t1),
            BiWaveform::Axis2(w) => w.eval(t2),
            BiWaveform::Product(w1, w2) => w1.eval(t1) * w2.eval(t2),
            BiWaveform::ShearedCarrier {
                amplitude,
                k,
                f1,
                fd,
                phase,
                envelope,
            } => {
                let carrier = (2.0 * PI * (*k as f64 * f1 * t1 - fd * t2) + phase).cos();
                amplitude * carrier * envelope.eval(fd * t2)
            }
        }
    }

    /// The diagonal single-time waveform `b(t) = b̂(t, t)`.
    pub fn diagonal(&self) -> Waveform {
        let me = self.clone();
        Waveform::Custom(Arc::new(move |t| me.eval(t, t)))
    }

    /// The RF carrier frequency `f2 = k·f1 − fd` of a sheared carrier, or
    /// `None` for other variants.
    pub fn carrier_freq(&self) -> Option<f64> {
        match self {
            BiWaveform::ShearedCarrier { k, f1, fd, .. } => Some(*k as f64 * f1 - fd),
            _ => None,
        }
    }
}

/// Complete description of an independent source's time behaviour.
///
/// Sources built from a [`BiWaveform`] support both transient (via the
/// diagonal) and MPDE analyses; plain [`Waveform`] sources support MPDE only
/// if they are DC.
#[derive(Clone, Debug)]
pub struct SourceSpec {
    wave: Waveform,
    bi: Option<BiWaveform>,
}

impl SourceSpec {
    /// Single-time source (DC sources remain MPDE-compatible).
    pub fn uni(wave: Waveform) -> Self {
        SourceSpec { wave, bi: None }
    }

    /// Multi-time source; the single-time form is the diagonal, so the two
    /// descriptions are consistent by construction.
    pub fn bi(bi: BiWaveform) -> Self {
        SourceSpec {
            wave: bi.diagonal(),
            bi: Some(bi),
        }
    }

    /// Single-time evaluation `b(t)`.
    pub fn eval(&self, t: f64) -> f64 {
        self.wave.eval(t)
    }

    /// Bivariate evaluation `b̂(t1, t2)`, if available. DC sources evaluate
    /// to their constant on both axes.
    pub fn eval_bi(&self, t1: f64, t2: f64) -> Option<f64> {
        if let Some(bi) = &self.bi {
            return Some(bi.eval(t1, t2));
        }
        match &self.wave {
            Waveform::Dc(v) => Some(*v),
            _ => None,
        }
    }

    /// The underlying single-time waveform.
    pub fn waveform(&self) -> &Waveform {
        &self.wave
    }

    /// The bivariate form, if one was attached.
    pub fn bi_waveform(&self) -> Option<&BiWaveform> {
        self.bi.as_ref()
    }
}

impl From<Waveform> for SourceSpec {
    fn from(w: Waveform) -> Self {
        SourceSpec::uni(w)
    }
}

impl From<BiWaveform> for SourceSpec {
    fn from(b: BiWaveform) -> Self {
        SourceSpec::bi(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(2.5);
        assert_eq!(w.eval(0.0), 2.5);
        assert_eq!(w.eval(1e9), 2.5);
        assert!(w.is_dc());
    }

    #[test]
    fn sine_basics() {
        let w = Waveform::sine(2.0, 1.0);
        assert!(w.eval(0.0).abs() < 1e-15);
        assert!((w.eval(0.25) - 2.0).abs() < 1e-12);
        let c = Waveform::cosine(1.0, 1.0);
        assert!((c.eval(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn pulse_edges() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.5,
            period: 2.0,
        };
        assert_eq!(w.eval(0.5), 0.0); // before delay
        assert!((w.eval(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.eval(1.3), 1.0); // plateau
        assert!((w.eval(1.65) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.eval(1.9), 0.0); // back to v1
        assert_eq!(w.eval(3.3), 1.0); // second period plateau
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(Arc::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)]));
        assert_eq!(w.eval(-1.0), 0.0);
        assert!((w.eval(0.5) - 1.0).abs() < 1e-15);
        assert!((w.eval(1.5) - 1.0).abs() < 1e-15);
        assert_eq!(w.eval(5.0), 0.0);
    }

    #[test]
    fn bits_envelope_antipodal() {
        let e = Envelope::bits(vec![true, false, true, true], 0.0);
        assert_eq!(e.eval(0.1), 1.0);
        assert_eq!(e.eval(0.3), -1.0);
        assert_eq!(e.eval(0.6), 1.0);
        assert_eq!(e.eval(0.9), 1.0);
        // periodic wrap
        assert_eq!(e.eval(1.1), 1.0);
        assert_eq!(e.eval(-0.7), -1.0);
    }

    #[test]
    fn bits_envelope_smooth_edges() {
        let e = Envelope::bits(vec![true, false], 0.2);
        // Halfway through the transition into bit 1 (u=0.5..0.5+0.1):
        let mid = e.eval(0.5 + 0.05);
        assert!(
            mid.abs() < 1e-12,
            "raised cosine midpoint should be 0, got {mid}"
        );
    }

    #[test]
    fn sheared_carrier_diagonal_is_modulated_tone() {
        // k=2, f1=450 MHz, fd=15 kHz => f2 = 900 MHz − 15 kHz.
        let bi = BiWaveform::ShearedCarrier {
            amplitude: 1.0,
            k: 2,
            f1: 450e6,
            fd: 15e3,
            phase: 0.0,
            envelope: Envelope::Unit,
        };
        let f2 = bi.carrier_freq().expect("carrier");
        assert!((f2 - (900e6 - 15e3)).abs() < 1.0);
        for &t in &[0.0, 1.3e-9, 7.7e-8, 2.5e-5] {
            let expect = (2.0 * PI * f2 * t).cos();
            let got = bi.eval(t, t);
            assert!((got - expect).abs() < 1e-9, "t={t}: {got} vs {expect}");
        }
    }

    #[test]
    fn source_spec_bi_diagonal_consistency() {
        let bi = BiWaveform::ShearedCarrier {
            amplitude: 0.3,
            k: 1,
            f1: 1e9,
            fd: 10e3,
            phase: 0.7,
            envelope: Envelope::bits(vec![true, false, false, true], 0.1),
        };
        let spec = SourceSpec::bi(bi.clone());
        for &t in &[0.0, 1e-10, 3.7e-6, 9.9e-5] {
            assert!((spec.eval(t) - bi.eval(t, t)).abs() < 1e-12);
            assert!((spec.eval_bi(t, t).expect("bi") - spec.eval(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn uni_non_dc_has_no_bivariate() {
        let spec = SourceSpec::uni(Waveform::sine(1.0, 1e6));
        assert!(spec.eval_bi(0.0, 0.0).is_none());
        let dc = SourceSpec::uni(Waveform::Dc(3.0));
        assert_eq!(dc.eval_bi(1.0, 2.0), Some(3.0));
    }

    #[test]
    fn axis_waveforms_pick_their_axis() {
        let b1 = BiWaveform::Axis1(Waveform::sine(1.0, 1.0));
        let b2 = BiWaveform::Axis2(Waveform::sine(1.0, 1.0));
        assert!((b1.eval(0.25, 0.0) - 1.0).abs() < 1e-12);
        assert!(b1.eval(0.0, 0.25).abs() < 1e-12);
        assert!((b2.eval(0.0, 0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_waveform_multiplies() {
        let p = BiWaveform::Product(Waveform::Dc(2.0), Waveform::Dc(3.0));
        assert_eq!(p.eval(0.0, 0.0), 6.0);
    }

    proptest! {
        #[test]
        fn prop_diagonal_property_all_variants(t in -1e-3f64..1e-3) {
            // The defining MPDE property: b̂(t,t) equals the derived b(t).
            let variants: Vec<BiWaveform> = vec![
                BiWaveform::Axis1(Waveform::sine(1.0, 1e6)),
                BiWaveform::Axis2(Waveform::sine(0.5, 1e3)),
                BiWaveform::Product(Waveform::sine(1.0, 1e6), Waveform::Dc(2.0)),
                BiWaveform::ShearedCarrier {
                    amplitude: 1.2, k: 2, f1: 1e6, fd: 1e3, phase: 0.3,
                    envelope: Envelope::bits(vec![true, false, true], 0.15),
                },
            ];
            for bi in variants {
                let spec = SourceSpec::bi(bi.clone());
                prop_assert!((spec.eval(t) - bi.eval(t, t)).abs() < 1e-10);
            }
        }

        #[test]
        fn prop_envelope_periodic(u in -3.0f64..3.0) {
            let e = Envelope::bits(vec![true, false, true, true, false], 0.2);
            prop_assert!((e.eval(u) - e.eval(u + 1.0)).abs() < 1e-10);
            prop_assert!(e.eval(u).abs() <= 1.0 + 1e-12);
        }
    }
}
