//! Independent voltage and current sources.

use super::Device;
use crate::stamp::{StampContext, Unknown};
use crate::waveform::{SourceSpec, Waveform};
use crate::{CircuitError, Result};

/// DC component of a waveform, used as the `λ = 0` endpoint of
/// source-stepping homotopies.
fn dc_component(w: &Waveform) -> f64 {
    match w {
        Waveform::Dc(v) => *v,
        Waveform::Sine { offset, .. } => *offset,
        Waveform::Pulse { v1, .. } => *v1,
        Waveform::Pwl(points) => points.first().map(|&(_, v)| v).unwrap_or(0.0),
        Waveform::Custom(_) => 0.0,
    }
}

/// Independent voltage source (adds one branch-current unknown).
///
/// Branch equation: `v_p − v_n − V(t) = 0`, stamped as `f_br = v_p − v_n`
/// and `b_br = −V(t)`.
#[derive(Debug, Clone)]
pub struct Vsource {
    name: String,
    p: Unknown,
    n: Unknown,
    spec: SourceSpec,
    branch: Unknown,
}

impl Vsource {
    pub(crate) fn new(name: String, p: Unknown, n: Unknown, spec: SourceSpec) -> Self {
        Vsource {
            name,
            p,
            n,
            spec,
            branch: Unknown::Ground,
        }
    }

    /// Index of the branch-current unknown (after building).
    pub fn branch_index(&self) -> Option<usize> {
        self.branch.index()
    }

    /// The source's time specification.
    pub fn spec(&self) -> &SourceSpec {
        &self.spec
    }
}

impl Device for Vsource {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn assign_branches(&mut self, branches: &[usize]) {
        self.branch = Unknown::Index(branches[0]);
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let i = StampContext::value(x, self.branch);
        ctx.add_residual(self.p, i);
        ctx.add_residual(self.n, -i);
        ctx.add_jacobian(self.p, self.branch, 1.0);
        ctx.add_jacobian(self.n, self.branch, -1.0);
        let v = StampContext::value(x, self.p) - StampContext::value(x, self.n);
        ctx.add_residual(self.branch, v);
        ctx.add_jacobian(self.branch, self.p, 1.0);
        ctx.add_jacobian(self.branch, self.n, -1.0);
    }

    fn stamp_source(&self, t: f64, b: &mut [f64]) {
        if let Some(i) = self.branch.index() {
            b[i] -= self.spec.eval(t);
        }
    }

    fn stamp_source_dc(&self, b: &mut [f64]) {
        if let Some(i) = self.branch.index() {
            b[i] -= dc_component(self.spec.waveform());
        }
    }

    fn stamp_source_bi(&self, t1: f64, t2: f64, b: &mut [f64]) -> Result<()> {
        let v = self
            .spec
            .eval_bi(t1, t2)
            .ok_or_else(|| CircuitError::MissingBivariateSource {
                device: self.name.clone(),
            })?;
        if let Some(i) = self.branch.index() {
            b[i] -= v;
        }
        Ok(())
    }

    fn is_source(&self) -> bool {
        true
    }
}

/// Independent current source.
///
/// SPICE convention: a positive value `J` drives current from `p` through
/// the source to `n`, i.e. it is *extracted* from node `p`:
/// `b_p = +J`, `b_n = −J`.
#[derive(Debug, Clone)]
pub struct Isource {
    name: String,
    p: Unknown,
    n: Unknown,
    spec: SourceSpec,
}

impl Isource {
    pub(crate) fn new(name: String, p: Unknown, n: Unknown, spec: SourceSpec) -> Self {
        Isource { name, p, n, spec }
    }

    /// The source's time specification.
    pub fn spec(&self) -> &SourceSpec {
        &self.spec
    }
}

impl Device for Isource {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp_resistive(&self, _x: &[f64], _ctx: &mut StampContext<'_>) {}

    fn stamp_source(&self, t: f64, b: &mut [f64]) {
        let j = self.spec.eval(t);
        if let Some(i) = self.p.index() {
            b[i] += j;
        }
        if let Some(i) = self.n.index() {
            b[i] -= j;
        }
    }

    fn stamp_source_dc(&self, b: &mut [f64]) {
        let j = dc_component(self.spec.waveform());
        if let Some(i) = self.p.index() {
            b[i] += j;
        }
        if let Some(i) = self.n.index() {
            b[i] -= j;
        }
    }

    fn stamp_source_bi(&self, t1: f64, t2: f64, b: &mut [f64]) -> Result<()> {
        let j = self
            .spec
            .eval_bi(t1, t2)
            .ok_or_else(|| CircuitError::MissingBivariateSource {
                device: self.name.clone(),
            })?;
        if let Some(i) = self.p.index() {
            b[i] += j;
        }
        if let Some(i) = self.n.index() {
            b[i] -= j;
        }
        Ok(())
    }

    fn is_source(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::BiWaveform;

    #[test]
    fn vsource_branch_stamps() {
        let mut v = Vsource::new(
            "V1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            SourceSpec::uni(Waveform::Dc(5.0)),
        );
        v.assign_branches(&[1]);
        let x = vec![4.0, 0.1];
        let mut f = vec![0.0; 2];
        v.stamp_resistive(&x, &mut StampContext::new(&mut f, None));
        assert!((f[0] - 0.1).abs() < 1e-15);
        assert!((f[1] - 4.0).abs() < 1e-15);
        let mut b = vec![0.0; 2];
        v.stamp_source(0.0, &mut b);
        assert_eq!(b[1], -5.0);
        // Residual f + b at the true solution (v=5) is zero on the branch row.
        assert!((5.0 + b[1]).abs() < 1e-15);
    }

    #[test]
    fn isource_extracts_from_p() {
        let i = Isource::new(
            "I1".into(),
            Unknown::Index(0),
            Unknown::Index(1),
            SourceSpec::uni(Waveform::Dc(1e-3)),
        );
        let mut b = vec![0.0; 2];
        i.stamp_source(0.0, &mut b);
        assert_eq!(b[0], 1e-3);
        assert_eq!(b[1], -1e-3);
    }

    #[test]
    fn bivariate_missing_errors() {
        let v = Vsource::new(
            "V1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            SourceSpec::uni(Waveform::sine(1.0, 1e6)),
        );
        let mut b = vec![0.0; 2];
        assert!(matches!(
            v.stamp_source_bi(0.0, 0.0, &mut b),
            Err(CircuitError::MissingBivariateSource { .. })
        ));
    }

    #[test]
    fn bivariate_dc_source_ok() {
        let i = Isource::new(
            "I1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            SourceSpec::uni(Waveform::Dc(2.0)),
        );
        let mut b = vec![0.0; 1];
        i.stamp_source_bi(0.5, 0.7, &mut b).expect("dc bivariate");
        assert_eq!(b[0], 2.0);
    }

    #[test]
    fn bivariate_axis1_source() {
        let mut v = Vsource::new(
            "VLO".into(),
            Unknown::Index(0),
            Unknown::Ground,
            SourceSpec::bi(BiWaveform::Axis1(Waveform::sine(1.0, 1.0))),
        );
        v.assign_branches(&[1]);
        let mut b = vec![0.0; 2];
        v.stamp_source_bi(0.25, 0.9, &mut b).expect("bi");
        assert!((b[1] + 1.0).abs() < 1e-12, "sin(2π·0.25) = 1 on axis 1");
    }

    #[test]
    fn dc_component_of_waveforms() {
        assert_eq!(dc_component(&Waveform::Dc(3.0)), 3.0);
        assert_eq!(
            dc_component(&Waveform::Sine {
                amplitude: 1.0,
                freq: 1.0,
                phase: 0.0,
                offset: 0.7
            }),
            0.7
        );
    }
}
