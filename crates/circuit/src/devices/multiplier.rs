//! Behavioural four-quadrant multiplier (ideal mixer core).
//!
//! Realises the paper's ideal mixing operation `z = x·y` (eq. 5) as a
//! circuit element: a current `K·(v_x⁺ − v_x⁻)·(v_y⁺ − v_y⁻)` driven from
//! `p` to `n`. Terminated in a resistor this produces the product voltage.

use super::Device;
use crate::stamp::{StampContext, Unknown};

/// Behavioural multiplier: `i = K·v_x·v_y` from `p` to `n`, with
/// `v_x = v(xp) − v(xn)` and `v_y = v(yp) − v(yn)`.
#[derive(Debug, Clone)]
pub struct Multiplier {
    name: String,
    p: Unknown,
    n: Unknown,
    xp: Unknown,
    xn: Unknown,
    yp: Unknown,
    yn: Unknown,
    gain: f64,
}

impl Multiplier {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        p: Unknown,
        n: Unknown,
        xp: Unknown,
        xn: Unknown,
        yp: Unknown,
        yn: Unknown,
        gain: f64,
    ) -> Self {
        Multiplier {
            name,
            p,
            n,
            xp,
            xn,
            yp,
            yn,
            gain,
        }
    }

    /// The multiplier gain `K` in A/V².
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Device for Multiplier {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let vx = StampContext::value(x, self.xp) - StampContext::value(x, self.xn);
        let vy = StampContext::value(x, self.yp) - StampContext::value(x, self.yn);
        let i = self.gain * vx * vy;
        ctx.add_residual(self.p, i);
        ctx.add_residual(self.n, -i);
        // ∂i/∂vx = K·vy on the x control pair, ∂i/∂vy = K·vx on the y pair.
        let gx = self.gain * vy;
        let gy = self.gain * vx;
        for (eq, sign) in [(self.p, 1.0), (self.n, -1.0)] {
            ctx.add_jacobian(eq, self.xp, sign * gx);
            ctx.add_jacobian(eq, self.xn, -sign * gx);
            ctx.add_jacobian(eq, self.yp, sign * gy);
            ctx.add_jacobian(eq, self.yn, -sign * gy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_numerics::sparse::Triplets;

    #[test]
    fn product_current() {
        let m = Multiplier::new(
            "M1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            Unknown::Index(1),
            Unknown::Ground,
            Unknown::Index(2),
            Unknown::Ground,
            2.0,
        );
        let x = vec![0.0, 3.0, 4.0];
        let mut f = vec![0.0; 3];
        let mut j = Triplets::new(3, 3);
        m.stamp_resistive(&x, &mut StampContext::new(&mut f, Some(&mut j)));
        assert!((f[0] - 24.0).abs() < 1e-12);
        let jm = j.to_csr();
        assert!((jm.get(0, 1) - 8.0).abs() < 1e-12, "∂i/∂vx = K·vy");
        assert!((jm.get(0, 2) - 6.0).abs() < 1e-12, "∂i/∂vy = K·vx");
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        let m = Multiplier::new(
            "M1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            Unknown::Index(1),
            Unknown::Index(2),
            Unknown::Index(1),
            Unknown::Ground,
            1.5,
        );
        // Control pairs share node 1: checks Jacobian accumulation.
        let x0 = vec![0.0, 0.8, 0.2];
        let eval = |x: &[f64]| {
            let mut f = vec![0.0; 3];
            m.stamp_resistive(x, &mut StampContext::new(&mut f, None));
            f
        };
        let f0 = eval(&x0);
        let mut j = Triplets::new(3, 3);
        let mut f = vec![0.0; 3];
        m.stamp_resistive(&x0, &mut StampContext::new(&mut f, Some(&mut j)));
        let jm = j.to_csr();
        let h = 1e-7;
        for col in 0..3 {
            let mut xp = x0.clone();
            xp[col] += h;
            let fp = eval(&xp);
            for row in 0..3 {
                let fd = (fp[row] - f0[row]) / h;
                assert!(
                    (jm.get(row, col) - fd).abs() < 1e-5,
                    "J[{row}][{col}] = {} vs fd {}",
                    jm.get(row, col),
                    fd
                );
            }
        }
    }
}
