//! Linear inductor (adds one branch-current unknown).

use super::Device;
use crate::stamp::{StampContext, Unknown};

/// A linear inductor with branch current `i` as an extra unknown.
///
/// KCL rows get `±i`; the branch row carries `v_a − v_b − L·di/dt = 0`,
/// expressed in the `d/dt q + f = 0` form as `f_br = v_a − v_b` and
/// `q_br = −L·i`.
#[derive(Debug, Clone)]
pub struct Inductor {
    name: String,
    a: Unknown,
    b: Unknown,
    inductance: f64,
    branch: Unknown,
}

impl Inductor {
    pub(crate) fn new(name: String, a: Unknown, b: Unknown, inductance: f64) -> Self {
        Inductor {
            name,
            a,
            b,
            inductance,
            branch: Unknown::Ground, // assigned later
        }
    }

    /// The inductance in henries.
    pub fn inductance(&self) -> f64 {
        self.inductance
    }

    /// Index of the branch-current unknown (after building).
    pub fn branch_index(&self) -> Option<usize> {
        self.branch.index()
    }
}

impl Device for Inductor {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn assign_branches(&mut self, branches: &[usize]) {
        self.branch = Unknown::Index(branches[0]);
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let i = StampContext::value(x, self.branch);
        // KCL: current i flows from a through the inductor to b.
        ctx.add_residual(self.a, i);
        ctx.add_residual(self.b, -i);
        ctx.add_jacobian(self.a, self.branch, 1.0);
        ctx.add_jacobian(self.b, self.branch, -1.0);
        // Branch voltage part: f_br = v_a − v_b.
        let v = StampContext::value(x, self.a) - StampContext::value(x, self.b);
        ctx.add_residual(self.branch, v);
        ctx.add_jacobian(self.branch, self.a, 1.0);
        ctx.add_jacobian(self.branch, self.b, -1.0);
    }

    fn stamp_reactive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        // q_br = −L·i so that d/dt q_br + f_br = −L·di/dt + (v_a − v_b) = 0.
        let i = StampContext::value(x, self.branch);
        ctx.add_residual(self.branch, -self.inductance * i);
        ctx.add_jacobian(self.branch, self.branch, -self.inductance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_numerics::sparse::Triplets;

    #[test]
    fn branch_equation_signs() {
        let mut l = Inductor::new("L1".into(), Unknown::Index(0), Unknown::Ground, 1e-6);
        l.assign_branches(&[1]);
        let x = vec![2.0, 0.3]; // v_a = 2, i = 0.3
        let mut f = vec![0.0; 2];
        let mut jf = Triplets::new(2, 2);
        l.stamp_resistive(&x, &mut StampContext::new(&mut f, Some(&mut jf)));
        assert!((f[0] - 0.3).abs() < 1e-15, "KCL at a gets +i");
        assert!((f[1] - 2.0).abs() < 1e-15, "branch row gets v_a");
        let mut q = vec![0.0; 2];
        let mut jq = Triplets::new(2, 2);
        l.stamp_reactive(&x, &mut StampContext::new(&mut q, Some(&mut jq)));
        assert!((q[1] + 1e-6 * 0.3).abs() < 1e-20);
        assert_eq!(jq.to_csr().get(1, 1), -1e-6);
    }
}
