//! Device models.
//!
//! Every device implements [`Device`]: it stamps its conductive residual
//! `f(x)` (with Jacobian `G`), its charge residual `q(x)` (with Jacobian
//! `C`), and — for independent sources — the excitation `b(t)` or its
//! bivariate form `b̂(t1, t2)`.
//!
//! Sign conventions (`d/dt q + f + b = 0`):
//! * KCL rows: currents *leaving* a node are positive.
//! * A voltage source `V` contributes branch equation `v⁺ − v⁻ − V(t) = 0`,
//!   stamped as `f = v⁺ − v⁻` and `b = −V(t)`.
//! * A current source with value `J` drives `J` from its `p` terminal
//!   through the source to `n` (SPICE convention), i.e. `b_p = +J`,
//!   `b_n = −J`.

mod bjt;
mod capacitor;
mod controlled;
mod diode;
mod inductor;
mod mosfet;
mod multiplier;
mod resistor;
mod sources;

pub use bjt::{Bjt, BjtOperatingPoint, BjtParams, BjtPolarity};
pub use capacitor::Capacitor;
pub use controlled::{Vccs, Vcvs};
pub use diode::{Diode, DiodeParams};
pub use inductor::Inductor;
pub use mosfet::{MosPolarity, Mosfet, MosfetParams};
pub use multiplier::Multiplier;
pub use resistor::Resistor;
pub use sources::{Isource, Vsource};

use crate::stamp::{StampContext, Unknown};
use crate::Result;

/// A circuit element that stamps into the MNA system.
pub trait Device: Send + Sync + std::fmt::Debug {
    /// The device's instance name (unique within a circuit).
    fn name(&self) -> &str;

    /// Number of extra branch-current unknowns this device needs
    /// (voltage sources and inductors need one).
    fn num_branches(&self) -> usize {
        0
    }

    /// Receives the unknown indices allocated for this device's branches.
    ///
    /// Called exactly once by the builder; the slice length equals
    /// [`Device::num_branches`].
    fn assign_branches(&mut self, _branches: &[usize]) {}

    /// Stamps the conductive residual `f(x)` and, if requested, `∂f/∂x`.
    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>);

    /// Stamps the charge residual `q(x)` and, if requested, `∂q/∂x`.
    fn stamp_reactive(&self, _x: &[f64], _ctx: &mut StampContext<'_>) {}

    /// Stamps the excitation `b(t)`.
    fn stamp_source(&self, _t: f64, _b: &mut [f64]) {}

    /// Stamps the *DC component* of the excitation (used as the `λ = 0`
    /// endpoint of source-stepping homotopies).
    fn stamp_source_dc(&self, _b: &mut [f64]) {}

    /// Stamps the bivariate excitation `b̂(t1, t2)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::MissingBivariateSource`] for sources
    /// without a multi-time description.
    fn stamp_source_bi(&self, _t1: f64, _t2: f64, _b: &mut [f64]) -> Result<()> {
        Ok(())
    }

    /// Whether this device contributes to `b`.
    fn is_source(&self) -> bool {
        false
    }
}

/// Terminal pair resolved to unknown indices (or ground).
#[derive(Debug, Clone, Copy)]
pub struct Terminals2 {
    /// First (positive) terminal.
    pub a: Unknown,
    /// Second (negative) terminal.
    pub b: Unknown,
}

/// Soft exponential: `exp(u)` for `u ≤ cap`, linear continuation above.
///
/// Keeps diode/BJT style exponentials finite during Newton overshoot while
/// remaining C¹; the limited region is never active at a converged solution
/// of a physical circuit.
#[inline]
pub fn soft_exp(u: f64, cap: f64) -> (f64, f64) {
    if u <= cap {
        let e = u.exp();
        (e, e)
    } else {
        let e = cap.exp();
        (e * (1.0 + (u - cap)), e)
    }
}

/// Thermal voltage at 300 K, in volts.
pub const VT_300K: f64 = 0.025852;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_exp_matches_exp_below_cap() {
        let (v, d) = soft_exp(1.0, 40.0);
        assert!((v - 1.0f64.exp()).abs() < 1e-12);
        assert!((d - 1.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn soft_exp_linear_above_cap() {
        let cap = 5.0;
        let (v1, d1) = soft_exp(6.0, cap);
        let (v2, _) = soft_exp(7.0, cap);
        assert!((d1 - cap.exp()).abs() < 1e-12);
        assert!(
            ((v2 - v1) - cap.exp()).abs() < 1e-9,
            "slope constant above cap"
        );
        assert!(v2.is_finite());
    }

    #[test]
    fn soft_exp_continuous_at_cap() {
        let cap = 3.0;
        let (below, _) = soft_exp(cap - 1e-12, cap);
        let (above, _) = soft_exp(cap + 1e-12, cap);
        assert!((below - above).abs() < 1e-6);
    }

    #[test]
    fn soft_exp_never_overflows() {
        let (v, d) = soft_exp(1e6, 40.0);
        assert!(v.is_finite());
        assert!(d.is_finite());
    }
}
