//! Linear resistor.

use super::Device;
use crate::stamp::{StampContext, Unknown};

/// A linear two-terminal resistor: `i = (v_a − v_b)/R`.
#[derive(Debug, Clone)]
pub struct Resistor {
    name: String,
    a: Unknown,
    b: Unknown,
    conductance: f64,
}

impl Resistor {
    /// Creates a resistor between resolved unknowns.
    ///
    /// The builder validates `resistance > 0` before constructing this.
    pub(crate) fn new(name: String, a: Unknown, b: Unknown, resistance: f64) -> Self {
        Resistor {
            name,
            a,
            b,
            conductance: 1.0 / resistance,
        }
    }

    /// The conductance `1/R`.
    pub fn conductance(&self) -> f64 {
        self.conductance
    }
}

impl Device for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        ctx.stamp_conductance(self.a, self.b, self.conductance, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_numerics::sparse::Triplets;

    #[test]
    fn stamps_symmetric_conductance() {
        let r = Resistor::new("R1".into(), Unknown::Index(0), Unknown::Index(1), 100.0);
        let x = vec![1.0, 0.0];
        let mut f = vec![0.0; 2];
        let mut j = Triplets::new(2, 2);
        r.stamp_resistive(&x, &mut StampContext::new(&mut f, Some(&mut j)));
        assert!((f[0] - 0.01).abs() < 1e-15);
        assert!((f[1] + 0.01).abs() < 1e-15);
        let m = j.to_csr();
        assert_eq!(m.get(0, 0), 0.01);
        assert_eq!(m.get(1, 1), 0.01);
        assert_eq!(m.get(0, 1), -0.01);
    }

    #[test]
    fn grounded_resistor_single_row() {
        let r = Resistor::new("R1".into(), Unknown::Index(0), Unknown::Ground, 50.0);
        let x = vec![2.0];
        let mut f = vec![0.0; 1];
        r.stamp_resistive(&x, &mut StampContext::new(&mut f, None));
        assert!((f[0] - 0.04).abs() < 1e-15);
    }
}
