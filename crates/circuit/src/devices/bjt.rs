//! Bipolar junction transistor (Ebers–Moll).
//!
//! Rounds out the device library for users porting bipolar RF front-ends;
//! the paper's circuits are CMOS, but the substrate is general. Transport
//! formulation with soft-limited exponentials and lumped junction
//! capacitances.

use super::{soft_exp, Device, VT_300K};
use crate::stamp::{StampContext, Unknown};

/// BJT polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BjtPolarity {
    /// NPN device.
    #[default]
    Npn,
    /// PNP device.
    Pnp,
}

/// Ebers–Moll BJT parameters.
#[derive(Debug, Clone, Copy)]
pub struct BjtParams {
    /// Transport saturation current `Is` (A).
    pub is: f64,
    /// Forward current gain `β_F`.
    pub beta_f: f64,
    /// Reverse current gain `β_R`.
    pub beta_r: f64,
    /// Base–emitter junction capacitance (F, lumped).
    pub cbe: f64,
    /// Base–collector junction capacitance (F, lumped).
    pub cbc: f64,
    /// Exponent soft-limit (see [`soft_exp`]).
    pub exp_cap: f64,
    /// Polarity.
    pub polarity: BjtPolarity,
}

impl Default for BjtParams {
    fn default() -> Self {
        BjtParams {
            is: 1e-15,
            beta_f: 100.0,
            beta_r: 2.0,
            cbe: 1e-12,
            cbc: 0.3e-12,
            exp_cap: 40.0,
            polarity: BjtPolarity::Npn,
        }
    }
}

/// A three-terminal BJT (collector, base, emitter).
#[derive(Debug, Clone)]
pub struct Bjt {
    name: String,
    collector: Unknown,
    base: Unknown,
    emitter: Unknown,
    params: BjtParams,
}

/// Terminal currents and their derivatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtOperatingPoint {
    /// Collector current (into the collector).
    pub ic: f64,
    /// Base current (into the base).
    pub ib: f64,
    /// `∂ic/∂v_be`.
    pub dic_dvbe: f64,
    /// `∂ic/∂v_bc`.
    pub dic_dvbc: f64,
    /// `∂ib/∂v_be`.
    pub dib_dvbe: f64,
    /// `∂ib/∂v_bc`.
    pub dib_dvbc: f64,
}

impl Bjt {
    pub(crate) fn new(
        name: String,
        collector: Unknown,
        base: Unknown,
        emitter: Unknown,
        params: BjtParams,
    ) -> Self {
        Bjt {
            name,
            collector,
            base,
            emitter,
            params,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &BjtParams {
        &self.params
    }

    /// Ebers–Moll transport currents at the given junction voltages
    /// (NPN-normalised: the caller flips signs for PNP).
    pub fn operating_point(&self, vbe: f64, vbc: f64) -> BjtOperatingPoint {
        let p = &self.params;
        let vt = VT_300K;
        let (ef, def) = soft_exp(vbe / vt, p.exp_cap);
        let (er, der) = soft_exp(vbc / vt, p.exp_cap);
        // Transport current and diode currents.
        let icc = p.is * (ef - 1.0);
        let iec = p.is * (er - 1.0);
        let d_icc = p.is * def / vt;
        let d_iec = p.is * der / vt;
        // ic = icc − iec·(1 + 1/βR); ib = icc/βF + iec/βR.
        let ic = icc - iec * (1.0 + 1.0 / p.beta_r);
        let ib = icc / p.beta_f + iec / p.beta_r;
        BjtOperatingPoint {
            ic,
            ib,
            dic_dvbe: d_icc,
            dic_dvbc: -d_iec * (1.0 + 1.0 / p.beta_r),
            dib_dvbe: d_icc / p.beta_f,
            dib_dvbc: d_iec / p.beta_r,
        }
    }
}

impl Device for Bjt {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let sign = match self.params.polarity {
            BjtPolarity::Npn => 1.0,
            BjtPolarity::Pnp => -1.0,
        };
        let vc = StampContext::value(x, self.collector);
        let vb = StampContext::value(x, self.base);
        let ve = StampContext::value(x, self.emitter);
        let vbe = sign * (vb - ve);
        let vbc = sign * (vb - vc);
        let op = self.operating_point(vbe, vbc);
        // KCL rows accumulate the current flowing from each node INTO the
        // device: +ic at the collector, +ib at the base, −(ic+ib) at the
        // emitter (forward current exits the device there).
        let (ic, ib) = (sign * op.ic, sign * op.ib);
        ctx.add_residual(self.collector, ic);
        ctx.add_residual(self.base, ib);
        ctx.add_residual(self.emitter, -(ic + ib));
        // Derivatives w.r.t. node voltages via the vbe/vbc chain rule; the
        // sign² from the polarity normalisation cancels.
        let rows = [
            (self.collector, op.dic_dvbe, op.dic_dvbc),
            (self.base, op.dib_dvbe, op.dib_dvbc),
            (
                self.emitter,
                -(op.dic_dvbe + op.dib_dvbe),
                -(op.dic_dvbc + op.dib_dvbc),
            ),
        ];
        for (row, d_vbe, d_vbc) in rows {
            // vbe = vb − ve, vbc = vb − vc (in normalised space).
            ctx.add_jacobian(row, self.base, d_vbe + d_vbc);
            ctx.add_jacobian(row, self.emitter, -d_vbe);
            ctx.add_jacobian(row, self.collector, -d_vbc);
        }
    }

    fn stamp_reactive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let p = &self.params;
        if p.cbe != 0.0 {
            ctx.stamp_conductance(self.base, self.emitter, p.cbe, x);
        }
        if p.cbc != 0.0 {
            ctx.stamp_conductance(self.base, self.collector, p.cbc, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn npn() -> Bjt {
        Bjt::new(
            "Q1".into(),
            Unknown::Index(0),
            Unknown::Index(1),
            Unknown::Index(2),
            BjtParams::default(),
        )
    }

    #[test]
    fn off_device_carries_no_current() {
        let op = npn().operating_point(0.0, 0.0);
        assert_eq!(op.ic, 0.0);
        assert_eq!(op.ib, 0.0);
    }

    #[test]
    fn forward_active_beta() {
        // vbe = 0.65 V, vbc = −2 V: forward active, ic/ib ≈ βF.
        let op = npn().operating_point(0.65, -2.0);
        assert!(op.ic > 1e-5, "collector current flows: {}", op.ic);
        let beta = op.ic / op.ib;
        assert!(
            (beta - 100.0).abs() / 100.0 < 0.05,
            "current gain ≈ βF: {beta}"
        );
    }

    #[test]
    fn saturation_reduces_gain() {
        // Both junctions forward: ic/ib drops well below βF.
        let op = npn().operating_point(0.65, 0.6);
        let beta = op.ic / op.ib;
        assert!(beta < 50.0, "saturated beta {beta}");
    }

    #[test]
    fn kcl_holds_in_stamps() {
        let q = npn();
        let x = vec![2.0, 0.65, 0.0];
        let mut f = vec![0.0; 3];
        q.stamp_resistive(&x, &mut StampContext::new(&mut f, None));
        let sum: f64 = f.iter().sum();
        assert!(sum.abs() < 1e-18, "terminal currents sum to zero: {sum}");
    }

    #[test]
    fn pnp_mirrors_npn() {
        let p = BjtParams {
            polarity: BjtPolarity::Pnp,
            ..Default::default()
        };
        let pnp = Bjt::new(
            "Q2".into(),
            Unknown::Index(0),
            Unknown::Index(1),
            Unknown::Index(2),
            p,
        );
        let xn = vec![2.0, 0.65, 0.0];
        let xp = vec![-2.0, -0.65, 0.0];
        let mut fn_ = vec![0.0; 3];
        let mut fp = vec![0.0; 3];
        npn().stamp_resistive(&xn, &mut StampContext::new(&mut fn_, None));
        pnp.stamp_resistive(&xp, &mut StampContext::new(&mut fp, None));
        for (a, b) in fn_.iter().zip(&fp) {
            assert!((a + b).abs() < 1e-18, "PNP mirrors NPN: {a} vs {b}");
        }
    }

    proptest! {
        #[test]
        fn prop_stamp_jacobian_matches_fd(vc in -2.0f64..2.0, vb in -0.8f64..0.8, ve in -1.0f64..1.0) {
            let q = npn();
            let x0 = vec![vc, vb, ve];
            let eval = |x: &[f64]| {
                let mut f = vec![0.0; 3];
                q.stamp_resistive(x, &mut StampContext::new(&mut f, None));
                f
            };
            let f0 = eval(&x0);
            let mut jac = rfsim_numerics::sparse::Triplets::new(3, 3);
            let mut f = vec![0.0; 3];
            q.stamp_resistive(&x0, &mut StampContext::new(&mut f, Some(&mut jac)));
            let jm = jac.to_csr();
            let h = 1e-8;
            for col in 0..3 {
                let mut xp = x0.clone();
                xp[col] += h;
                let fp = eval(&xp);
                for row in 0..3 {
                    let fd = (fp[row] - f0[row]) / h;
                    let j = jm.get(row, col);
                    // FD resolution floor: with currents up to |f0| the
                    // difference quotient can only resolve derivatives down
                    // to ~|f0|·eps/h; skip entries below that.
                    let floor = f0[row].abs() * 1e-15 / h + 1e-9;
                    let tol = (1e-2 * j.abs()).max(5.0 * floor);
                    prop_assert!((j - fd).abs() < tol,
                        "J[{row}][{col}] = {j} vs fd {fd} (tol {tol}) at {x0:?}");
                }
            }
        }
    }
}
