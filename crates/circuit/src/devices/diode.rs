//! Junction diode with soft-limited exponential.

use super::{soft_exp, Device, VT_300K};
use crate::stamp::{StampContext, Unknown};

/// Diode model parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiodeParams {
    /// Saturation current `Is` in amperes.
    pub is: f64,
    /// Emission coefficient `n`.
    pub n: f64,
    /// Zero-bias junction capacitance in farads (modelled as linear).
    pub cj0: f64,
    /// Transit time in seconds (diffusion charge `tt·i_d`).
    pub tt: f64,
    /// Exponent soft-limit: arguments beyond this are linearised.
    pub exp_cap: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            is: 1e-14,
            n: 1.0,
            cj0: 0.0,
            tt: 0.0,
            exp_cap: 40.0,
        }
    }
}

/// A two-terminal junction diode: `i = Is·(e^{v/(n·Vt)} − 1)` from anode to
/// cathode, with linear junction capacitance and diffusion charge.
#[derive(Debug, Clone)]
pub struct Diode {
    name: String,
    anode: Unknown,
    cathode: Unknown,
    params: DiodeParams,
}

impl Diode {
    pub(crate) fn new(name: String, anode: Unknown, cathode: Unknown, params: DiodeParams) -> Self {
        Diode {
            name,
            anode,
            cathode,
            params,
        }
    }

    /// Diode current and small-signal conductance at junction voltage `v`.
    pub fn current(&self, v: f64) -> (f64, f64) {
        let nvt = self.params.n * VT_300K;
        let (e, de) = soft_exp(v / nvt, self.params.exp_cap);
        let i = self.params.is * (e - 1.0);
        let g = self.params.is * de / nvt;
        (i, g)
    }

    /// The model parameters.
    pub fn params(&self) -> &DiodeParams {
        &self.params
    }
}

impl Device for Diode {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let v = StampContext::value(x, self.anode) - StampContext::value(x, self.cathode);
        let (i, g) = self.current(v);
        ctx.stamp_current_pair(self.anode, self.cathode, i, g);
    }

    fn stamp_reactive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let p = &self.params;
        if p.cj0 == 0.0 && p.tt == 0.0 {
            return;
        }
        let v = StampContext::value(x, self.anode) - StampContext::value(x, self.cathode);
        let (i, g) = self.current(v);
        // q = cj0·v + tt·i(v); dq/dv = cj0 + tt·g.
        let q = p.cj0 * v + p.tt * i;
        let c = p.cj0 + p.tt * g;
        ctx.stamp_current_pair(self.anode, self.cathode, q, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diode() -> Diode {
        Diode::new(
            "D1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            DiodeParams::default(),
        )
    }

    #[test]
    fn zero_bias_zero_current() {
        let (i, g) = diode().current(0.0);
        assert_eq!(i, 0.0);
        assert!((g - 1e-14 / VT_300K).abs() < 1e-15);
    }

    #[test]
    fn forward_bias_conducts() {
        let (i, _) = diode().current(0.7);
        assert!(
            i > 1e-4,
            "0.7 V silicon diode should carry real current: {i}"
        );
    }

    #[test]
    fn reverse_bias_saturates() {
        let (i, _) = diode().current(-5.0);
        assert!((i + 1e-14).abs() < 1e-20, "reverse current ≈ −Is");
    }

    #[test]
    fn overshoot_stays_finite() {
        let (i, g) = diode().current(100.0);
        assert!(i.is_finite());
        assert!(g.is_finite());
    }

    #[test]
    fn reactive_charge_with_tt() {
        let d = Diode::new(
            "D1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            DiodeParams {
                cj0: 1e-12,
                tt: 1e-9,
                ..Default::default()
            },
        );
        let x = vec![0.6];
        let mut q = vec![0.0; 1];
        d.stamp_reactive(&x, &mut StampContext::new(&mut q, None));
        let (i, _) = d.current(0.6);
        assert!((q[0] - (1e-12 * 0.6 + 1e-9 * i)).abs() < 1e-18);
    }

    proptest! {
        #[test]
        fn prop_conductance_is_derivative(v in -2.0f64..1.0) {
            let d = diode();
            let h = 1e-8;
            let (i0, g) = d.current(v);
            let (i1, _) = d.current(v + h);
            let fd = (i1 - i0) / h;
            // relative tolerance, since current spans many decades
            let scale = g.abs().max(1e-16);
            prop_assert!(((g - fd) / scale).abs() < 1e-3, "g {g} vs fd {fd} at v={v}");
        }

        #[test]
        fn prop_current_monotone(v1 in -1.0f64..1.0, dv in 0.001f64..0.5) {
            let d = diode();
            let (ia, _) = d.current(v1);
            let (ib, _) = d.current(v1 + dv);
            prop_assert!(ib >= ia);
        }
    }
}
