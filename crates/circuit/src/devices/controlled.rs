//! Linear controlled sources: VCCS and VCVS.

use super::Device;
use crate::stamp::{StampContext, Unknown};

/// Voltage-controlled current source:
/// `i = gm·(v_cp − v_cn)` flowing from `p` through the device to `n`.
#[derive(Debug, Clone)]
pub struct Vccs {
    name: String,
    p: Unknown,
    n: Unknown,
    cp: Unknown,
    cn: Unknown,
    gm: f64,
}

impl Vccs {
    pub(crate) fn new(
        name: String,
        p: Unknown,
        n: Unknown,
        cp: Unknown,
        cn: Unknown,
        gm: f64,
    ) -> Self {
        Vccs {
            name,
            p,
            n,
            cp,
            cn,
            gm,
        }
    }

    /// The transconductance in siemens.
    pub fn gm(&self) -> f64 {
        self.gm
    }
}

impl Device for Vccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let vc = StampContext::value(x, self.cp) - StampContext::value(x, self.cn);
        let i = self.gm * vc;
        ctx.add_residual(self.p, i);
        ctx.add_residual(self.n, -i);
        ctx.add_jacobian(self.p, self.cp, self.gm);
        ctx.add_jacobian(self.p, self.cn, -self.gm);
        ctx.add_jacobian(self.n, self.cp, -self.gm);
        ctx.add_jacobian(self.n, self.cn, self.gm);
    }
}

/// Voltage-controlled voltage source (adds one branch unknown):
/// `v_p − v_n = gain·(v_cp − v_cn)`.
#[derive(Debug, Clone)]
pub struct Vcvs {
    name: String,
    p: Unknown,
    n: Unknown,
    cp: Unknown,
    cn: Unknown,
    gain: f64,
    branch: Unknown,
}

impl Vcvs {
    pub(crate) fn new(
        name: String,
        p: Unknown,
        n: Unknown,
        cp: Unknown,
        cn: Unknown,
        gain: f64,
    ) -> Self {
        Vcvs {
            name,
            p,
            n,
            cp,
            cn,
            gain,
            branch: Unknown::Ground,
        }
    }

    /// The voltage gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Device for Vcvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn assign_branches(&mut self, branches: &[usize]) {
        self.branch = Unknown::Index(branches[0]);
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let i = StampContext::value(x, self.branch);
        ctx.add_residual(self.p, i);
        ctx.add_residual(self.n, -i);
        ctx.add_jacobian(self.p, self.branch, 1.0);
        ctx.add_jacobian(self.n, self.branch, -1.0);
        // Branch: v_p − v_n − gain·(v_cp − v_cn) = 0.
        let v = StampContext::value(x, self.p)
            - StampContext::value(x, self.n)
            - self.gain * (StampContext::value(x, self.cp) - StampContext::value(x, self.cn));
        ctx.add_residual(self.branch, v);
        ctx.add_jacobian(self.branch, self.p, 1.0);
        ctx.add_jacobian(self.branch, self.n, -1.0);
        ctx.add_jacobian(self.branch, self.cp, -self.gain);
        ctx.add_jacobian(self.branch, self.cn, self.gain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vccs_output_current() {
        let g = Vccs::new(
            "G1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            Unknown::Index(1),
            Unknown::Ground,
            1e-3,
        );
        let x = vec![0.0, 2.0];
        let mut f = vec![0.0; 2];
        g.stamp_resistive(&x, &mut StampContext::new(&mut f, None));
        assert!((f[0] - 2e-3).abs() < 1e-15);
        assert_eq!(f[1], 0.0, "control node draws no current");
    }

    #[test]
    fn vcvs_branch_equation() {
        let mut e = Vcvs::new(
            "E1".into(),
            Unknown::Index(0),
            Unknown::Ground,
            Unknown::Index(1),
            Unknown::Ground,
            10.0,
        );
        e.assign_branches(&[2]);
        // At a consistent point v_out = 10·v_in the branch residual is 0.
        let x = vec![5.0, 0.5, 0.01];
        let mut f = vec![0.0; 3];
        e.stamp_resistive(&x, &mut StampContext::new(&mut f, None));
        assert!(f[2].abs() < 1e-15);
        assert!(
            (f[0] - 0.01).abs() < 1e-15,
            "output KCL carries branch current"
        );
    }
}
