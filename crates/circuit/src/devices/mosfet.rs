//! Level-1 (Shichman–Hodges) MOSFET.
//!
//! The switching nonlinearity at the heart of the paper's mixers. Drain
//! current follows the classic square-law with channel-length modulation;
//! drain/source are swapped automatically for reverse operation. Gate and
//! junction capacitances are lumped constants (see DESIGN.md §3: the
//! time-scale structure the MPDE method addresses is set by the switching
//! nonlinearity and the node RC constants, both preserved here).

use super::Device;
use crate::stamp::{StampContext, Unknown};

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MosPolarity {
    /// N-channel device.
    #[default]
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Level-1 MOSFET parameters.
#[derive(Debug, Clone, Copy)]
pub struct MosfetParams {
    /// Transconductance parameter `KP = µ·Cox` in A/V².
    pub kp: f64,
    /// Zero-bias threshold voltage in volts (positive for NMOS).
    pub vt0: f64,
    /// Channel-length modulation `λ` in 1/V.
    pub lambda: f64,
    /// Channel width in metres.
    pub w: f64,
    /// Channel length in metres.
    pub l: f64,
    /// Lumped gate–source capacitance in farads.
    pub cgs: f64,
    /// Lumped gate–drain capacitance in farads.
    pub cgd: f64,
    /// Drain–bulk (ground) junction capacitance in farads.
    pub cdb: f64,
    /// Source–bulk (ground) junction capacitance in farads.
    pub csb: f64,
    /// Channel polarity.
    pub polarity: MosPolarity,
}

impl Default for MosfetParams {
    fn default() -> Self {
        MosfetParams {
            kp: 100e-6,
            vt0: 0.5,
            lambda: 0.02,
            w: 10e-6,
            l: 0.5e-6,
            cgs: 20e-15,
            cgd: 5e-15,
            cdb: 10e-15,
            csb: 10e-15,
            polarity: MosPolarity::Nmos,
        }
    }
}

impl MosfetParams {
    /// The device transconductance factor `β = KP·W/L`.
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }
}

/// Drain current and derivatives of an NMOS-normalised level-1 device.
///
/// Returns `(id, gm, gds)` = `(I_D, ∂I_D/∂v_gs, ∂I_D/∂v_ds)` for
/// `v_ds ≥ 0`; the caller handles polarity and drain/source swapping.
fn level1_ids(beta: f64, vt0: f64, lambda: f64, vgs: f64, vds: f64) -> (f64, f64, f64) {
    let vgt = vgs - vt0;
    if vgt <= 0.0 {
        // Cutoff.
        (0.0, 0.0, 0.0)
    } else if vds < vgt {
        // Triode.
        let clm = 1.0 + lambda * vds;
        let id = beta * (vgt * vds - 0.5 * vds * vds) * clm;
        let gm = beta * vds * clm;
        let gds = beta * (vgt - vds) * clm + beta * (vgt * vds - 0.5 * vds * vds) * lambda;
        (id, gm, gds)
    } else {
        // Saturation.
        let clm = 1.0 + lambda * vds;
        let id = 0.5 * beta * vgt * vgt * clm;
        let gm = beta * vgt * clm;
        let gds = 0.5 * beta * vgt * vgt * lambda;
        (id, gm, gds)
    }
}

/// A three-terminal (bulk tied to ground rail) level-1 MOSFET.
#[derive(Debug, Clone)]
pub struct Mosfet {
    name: String,
    drain: Unknown,
    gate: Unknown,
    source: Unknown,
    params: MosfetParams,
}

impl Mosfet {
    pub(crate) fn new(
        name: String,
        drain: Unknown,
        gate: Unknown,
        source: Unknown,
        params: MosfetParams,
    ) -> Self {
        Mosfet {
            name,
            drain,
            gate,
            source,
            params,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &MosfetParams {
        &self.params
    }

    /// Terminal currents and Jacobian pieces in *circuit* orientation.
    ///
    /// Returns `(id, gm, gds)` where `id` is the current from drain to
    /// source through the channel (sign follows polarity and operating
    /// quadrant), `gm = ∂id/∂v_g`, `gds = ∂id/∂v_d` with `∂id/∂v_s =
    /// −(gm + gds)`.
    pub fn channel_current(&self, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64) {
        let p = &self.params;
        let sign = match p.polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        };
        // Normalise to NMOS voltages.
        let (vdn, vgn, vsn) = (sign * vd, sign * vg, sign * vs);
        let beta = p.beta();
        if vdn >= vsn {
            // Forward: drain acts as drain.
            let (id, gm, gds) = level1_ids(beta, p.vt0, p.lambda, vgn - vsn, vdn - vsn);
            // id flows drain→source (NMOS); in normalised space
            // ∂id/∂vgn = gm, ∂id/∂vdn = gds, ∂id/∂vsn = −gm − gds.
            // Chain rule through vXn = sign·vX cancels the overall sign·…
            (sign * id, gm, gds)
        } else {
            // Reverse: swap source/drain roles.
            let (id, gm, gds) = level1_ids(beta, p.vt0, p.lambda, vgn - vdn, vsn - vdn);
            // Current flows source→drain in normalised space: id' = −id.
            // Derivatives w.r.t. original nodes:
            //   ∂(−id)/∂vgn = −gm
            //   ∂(−id)/∂vdn = −(−gm − gds) = gm + gds
            //   ∂(−id)/∂vsn = −gds
            (-sign * id, -gm, gm + gds)
        }
    }
}

impl Device for Mosfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp_resistive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let vd = StampContext::value(x, self.drain);
        let vg = StampContext::value(x, self.gate);
        let vs = StampContext::value(x, self.source);
        let (id, gm, gds) = self.channel_current(vd, vg, vs);
        let gs = -(gm + gds);
        // Channel current id leaves the drain node and enters the source.
        ctx.add_residual(self.drain, id);
        ctx.add_residual(self.source, -id);
        for (wrt, g) in [(self.drain, gds), (self.gate, gm), (self.source, gs)] {
            ctx.add_jacobian(self.drain, wrt, g);
            ctx.add_jacobian(self.source, wrt, -g);
        }
    }

    fn stamp_reactive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        let p = &self.params;
        // Lumped linear capacitances: gate-source, gate-drain, junctions.
        if p.cgs != 0.0 {
            ctx.stamp_conductance(self.gate, self.source, p.cgs, x);
        }
        if p.cgd != 0.0 {
            ctx.stamp_conductance(self.gate, self.drain, p.cgd, x);
        }
        if p.cdb != 0.0 {
            ctx.stamp_conductance(self.drain, Unknown::Ground, p.cdb, x);
        }
        if p.csb != 0.0 {
            ctx.stamp_conductance(self.source, Unknown::Ground, p.csb, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nmos() -> Mosfet {
        Mosfet::new(
            "M1".into(),
            Unknown::Index(0),
            Unknown::Index(1),
            Unknown::Index(2),
            MosfetParams::default(),
        )
    }

    #[test]
    fn cutoff_no_current() {
        let (id, gm, gds) = nmos().channel_current(1.0, 0.3, 0.0);
        assert_eq!((id, gm, gds), (0.0, 0.0, 0.0));
    }

    #[test]
    fn saturation_square_law() {
        let m = nmos();
        let p = m.params();
        let (id, gm, _) = m.channel_current(2.0, 1.5, 0.0);
        let vgt: f64 = 1.5 - p.vt0;
        let expect = 0.5 * p.beta() * vgt * vgt * (1.0 + p.lambda * 2.0);
        assert!((id - expect).abs() < 1e-12);
        assert!(gm > 0.0);
    }

    #[test]
    fn triode_region() {
        let m = nmos();
        let p = m.params();
        // vds = 0.2 < vgt = 1.0: triode.
        let (id, _, gds) = m.channel_current(0.2, 1.5, 0.0);
        let clm = 1.0 + p.lambda * 0.2;
        let expect = p.beta() * (1.0 * 0.2 - 0.5 * 0.04) * clm;
        assert!((id - expect).abs() < 1e-12);
        assert!(gds > 0.0, "triode output conductance is large");
    }

    #[test]
    fn symmetric_under_terminal_swap() {
        // Physical symmetry: swapping drain and source negates the current.
        let m = nmos();
        let (i_fwd, _, _) = m.channel_current(0.3, 1.5, 0.1);
        let (i_rev, _, _) = m.channel_current(0.1, 1.5, 0.3);
        assert!((i_fwd + i_rev).abs() < 1e-15, "{i_fwd} vs {i_rev}");
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = MosfetParams {
            polarity: MosPolarity::Pmos,
            ..Default::default()
        };
        let pm = Mosfet::new(
            "M2".into(),
            Unknown::Index(0),
            Unknown::Index(1),
            Unknown::Index(2),
            p,
        );
        let nm = nmos();
        let (idn, _, _) = nm.channel_current(1.0, 1.2, 0.0);
        let (idp, _, _) = pm.channel_current(-1.0, -1.2, 0.0);
        assert!(
            (idn + idp).abs() < 1e-15,
            "PMOS mirrors NMOS: {idn} vs {idp}"
        );
    }

    #[test]
    fn current_continuous_across_triode_saturation() {
        let m = nmos();
        let p = m.params();
        let vgt = 1.0 - p.vt0;
        let (i1, _, _) = m.channel_current(vgt - 1e-9, 1.0, 0.0);
        let (i2, _, _) = m.channel_current(vgt + 1e-9, 1.0, 0.0);
        assert!((i1 - i2).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_jacobian_matches_fd(vd in -1.5f64..1.5, vg in -1.5f64..1.5, vs in -1.5f64..1.5) {
            let m = nmos();
            let (id0, gm, gds) = m.channel_current(vd, vg, vs);
            let gs = -(gm + gds);
            let h = 1e-7;
            let checks = [
                (m.channel_current(vd + h, vg, vs).0, gds),
                (m.channel_current(vd, vg + h, vs).0, gm),
                (m.channel_current(vd, vg, vs + h).0, gs),
            ];
            for (idp, g) in checks {
                let fd = (idp - id0) / h;
                // Skip points within h of a region boundary, where the
                // one-sided difference straddles the kink.
                let scale = g.abs().max(1e-6);
                if ((g - fd) / scale).abs() > 2e-2 {
                    // Verify we are near a boundary; otherwise fail.
                    let p = m.params();
                    let sign = 1.0;
                    let (vdn, vgn, vsn) = (sign*vd, sign*vg, sign*vs);
                    let (lo, hi) = if vdn >= vsn { (vsn, vdn) } else { (vdn, vsn) };
                    let vgt = vgn - lo - p.vt0;
                    let vds = hi - lo;
                    let near_boundary = vgt.abs() < 1e-5 || (vds - vgt).abs() < 1e-5 || vds.abs() < 1e-5;
                    prop_assert!(near_boundary, "J mismatch away from kink: g={g} fd={fd} at ({vd},{vg},{vs})");
                }
            }
        }

        #[test]
        fn prop_passivity_sign(vd in 0.0f64..2.0, vg in 0.0f64..2.0) {
            // With source grounded and vds ≥ 0, NMOS current is non-negative.
            let (id, _, _) = nmos().channel_current(vd, vg, 0.0);
            prop_assert!(id >= 0.0);
        }
    }
}
