//! Linear capacitor.

use super::Device;
use crate::stamp::{StampContext, Unknown};

/// A linear two-terminal capacitor: `q = C·(v_a − v_b)`.
#[derive(Debug, Clone)]
pub struct Capacitor {
    name: String,
    a: Unknown,
    b: Unknown,
    capacitance: f64,
}

impl Capacitor {
    pub(crate) fn new(name: String, a: Unknown, b: Unknown, capacitance: f64) -> Self {
        Capacitor {
            name,
            a,
            b,
            capacitance,
        }
    }

    /// The capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }
}

impl Device for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp_resistive(&self, _x: &[f64], _ctx: &mut StampContext<'_>) {}

    fn stamp_reactive(&self, x: &[f64], ctx: &mut StampContext<'_>) {
        // Same ±C pattern as a conductance, applied to the charge residual.
        ctx.stamp_conductance(self.a, self.b, self.capacitance, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_numerics::sparse::Triplets;

    #[test]
    fn stamps_charge_not_current() {
        let c = Capacitor::new("C1".into(), Unknown::Index(0), Unknown::Ground, 1e-9);
        let x = vec![2.0];
        let mut f = vec![0.0; 1];
        c.stamp_resistive(&x, &mut StampContext::new(&mut f, None));
        assert_eq!(f[0], 0.0, "no conductive contribution");
        let mut q = vec![0.0; 1];
        let mut jq = Triplets::new(1, 1);
        c.stamp_reactive(&x, &mut StampContext::new(&mut q, Some(&mut jq)));
        assert!((q[0] - 2e-9).abs() < 1e-21);
        assert_eq!(jq.to_csr().get(0, 0), 1e-9);
    }
}
