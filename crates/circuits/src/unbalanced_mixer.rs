//! Unbalanced (single-device) switching mixer.
//!
//! A minimal direct down-conversion mixer in the style of
//! [Pihl/Christensen/Braun, ISCAS 2001]: a single MOSFET switched hard by
//! the LO chops the RF signal; an RC low-pass keeps the difference
//! frequency. The paper's §1 mentions both balanced and unbalanced
//! switching mixers as the target application class; this is the `k = 1`
//! (no internal doubling) case.

use rfsim_circuit::{
    BiWaveform, Circuit, CircuitBuilder, Envelope, MosfetParams, Result, Waveform, GROUND,
};

/// Parameters of the unbalanced switching mixer.
#[derive(Debug, Clone)]
pub struct UnbalancedMixerParams {
    /// LO frequency `f1`.
    pub f_lo: f64,
    /// Difference frequency `fd = f1 − f_rf`.
    pub fd: f64,
    /// LO gate amplitude (V) — large, to switch the device.
    pub lo_amplitude: f64,
    /// LO gate bias (V).
    pub lo_bias: f64,
    /// RF source amplitude (V).
    pub rf_amplitude: f64,
    /// RF bit pattern (empty = pure tone).
    pub rf_bits: Vec<bool>,
    /// RF source resistance (Ω).
    pub rs: f64,
    /// Output filter resistance (Ω).
    pub rl: f64,
    /// Output filter capacitance (F).
    pub cl: f64,
    /// Switch device parameters.
    pub device: MosfetParams,
}

impl Default for UnbalancedMixerParams {
    fn default() -> Self {
        UnbalancedMixerParams {
            f_lo: 900e6,
            fd: 15e3,
            lo_amplitude: 1.2,
            lo_bias: 0.6,
            rf_amplitude: 0.1,
            rf_bits: Vec::new(),
            rs: 200.0,
            rl: 10e3,
            cl: 5e-12,
            device: MosfetParams {
                w: 50e-6,
                ..Default::default()
            },
        }
    }
}

impl UnbalancedMixerParams {
    /// RF carrier `f_rf = f_lo − fd`.
    pub fn f_rf(&self) -> f64 {
        self.f_lo - self.fd
    }
}

/// The built unbalanced mixer with probe indices.
#[derive(Debug)]
pub struct UnbalancedMixer {
    /// The circuit.
    pub circuit: Circuit,
    /// Unknown index of the filtered output node.
    pub out: usize,
    /// Unknown index of the switch drain (chopped RF).
    pub drain: usize,
    /// The parameters used.
    pub params: UnbalancedMixerParams,
}

impl UnbalancedMixer {
    /// Builds the mixer netlist.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the builder.
    pub fn build(params: UnbalancedMixerParams) -> Result<Self> {
        let p = &params;
        let mut b = CircuitBuilder::new();
        let rf_in = b.node("rf_in");
        let drain = b.node("drain");
        let gate = b.node("gate");
        let out = b.node("out");

        let envelope = if p.rf_bits.is_empty() {
            Envelope::Unit
        } else {
            Envelope::bits(p.rf_bits.clone(), 0.08)
        };
        b.vsource(
            "VRF",
            rf_in,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: p.rf_amplitude,
                k: 1,
                f1: p.f_lo,
                fd: p.fd,
                phase: 0.0,
                envelope,
            },
        )?;
        b.vsource(
            "VLO",
            gate,
            GROUND,
            BiWaveform::Axis1(Waveform::Sine {
                amplitude: p.lo_amplitude,
                freq: p.f_lo,
                phase: 0.0,
                offset: p.lo_bias,
            }),
        )?;
        b.resistor("RS", rf_in, drain, p.rs)?;
        // Switch: drain chopped by the gate LO, source feeds the filter.
        b.mosfet("M1", drain, gate, out, p.device)?;
        b.resistor("RL", out, GROUND, p.rl)?;
        b.capacitor("CL", out, GROUND, p.cl)?;

        let circuit = b.build()?;
        let idx = |name: &str| {
            circuit
                .unknown_index_of_node(circuit.node_by_name(name).expect("node exists"))
                .expect("not ground")
        };
        Ok(UnbalancedMixer {
            out: idx("out"),
            drain: idx("drain"),
            circuit,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::dcop::dc_operating_point;

    #[test]
    fn builds_and_biases() {
        let m = UnbalancedMixer::build(UnbalancedMixerParams::default()).expect("build");
        let op = dc_operating_point(&m.circuit, Default::default()).expect("dc");
        // At DC the RF source is 0 (cos·unit envelope at t=0 gives A… the
        // DC component of a sheared carrier is 0 by construction), so the
        // output sits near ground.
        let v_out = op.solution[m.out];
        assert!(v_out.abs() < 0.3, "output near ground at DC: {v_out}");
        assert!(m.circuit.supports_bivariate());
    }

    #[test]
    fn rf_frequency_definition() {
        let p = UnbalancedMixerParams::default();
        assert!((p.f_rf() - (900e6 - 15e3)).abs() < 1.0);
    }
}
