//! Small shared test circuits.
//!
//! Used across the workspace's tests, examples and benches so that every
//! crate exercises identical fixtures.

use rfsim_circuit::{
    BiWaveform, Circuit, CircuitBuilder, DiodeParams, Envelope, Result, SourceSpec, Waveform,
    GROUND,
};

/// An RC low-pass driven by an arbitrary source; returns the circuit and
/// the output-node unknown index.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn rc_lowpass(r: f64, c: f64, source: impl Into<SourceSpec>) -> Result<(Circuit, usize)> {
    let mut b = CircuitBuilder::new();
    let inp = b.node("in");
    let out = b.node("out");
    b.vsource("V1", inp, GROUND, source)?;
    b.resistor("R1", inp, out, r)?;
    b.capacitor("C1", out, GROUND, c)?;
    let ckt = b.build()?;
    let idx = ckt
        .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
        .expect("not ground");
    Ok((ckt, idx))
}

/// An RC low-pass driven by a sheared carrier (`k = 1`), the standard
/// linear MPDE test vehicle. Returns `(circuit, out_index)`.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn rc_sheared(r: f64, c: f64, f1: f64, fd: f64, amplitude: f64) -> Result<(Circuit, usize)> {
    rc_lowpass(
        r,
        c,
        BiWaveform::ShearedCarrier {
            amplitude,
            k: 1,
            f1,
            fd,
            phase: 0.0,
            envelope: Envelope::Unit,
        },
    )
}

/// Half-wave diode rectifier into an RC tank. Returns `(circuit, out_index)`.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn diode_rectifier(freq: f64, amplitude: f64) -> Result<(Circuit, usize)> {
    let mut b = CircuitBuilder::new();
    let inp = b.node("in");
    let out = b.node("out");
    b.vsource("V1", inp, GROUND, Waveform::sine(amplitude, freq))?;
    b.diode("D1", inp, out, DiodeParams::default())?;
    b.resistor("RL", out, GROUND, 10e3)?;
    b.capacitor("CL", out, GROUND, 1.0 / (freq * 10e3))?;
    let ckt = b.build()?;
    let idx = ckt
        .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
        .expect("not ground");
    Ok((ckt, idx))
}

/// Series RLC tank driven by a step, for ringing/transient tests.
/// Returns `(circuit, cap_node_index)`.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn rlc_series(r: f64, l: f64, c: f64) -> Result<(Circuit, usize)> {
    let mut b = CircuitBuilder::new();
    let inp = b.node("in");
    let mid = b.node("mid");
    let cap = b.node("cap");
    b.vsource(
        "V1",
        inp,
        GROUND,
        Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 1.0,
            period: 0.0,
        },
    )?;
    b.resistor("R1", inp, mid, r)?;
    b.inductor("L1", mid, cap, l)?;
    b.capacitor("C1", cap, GROUND, c)?;
    let ckt = b.build()?;
    let idx = ckt
        .unknown_index_of_node(ckt.node_by_name("cap").expect("cap"))
        .expect("not ground");
    Ok((ckt, idx))
}

/// Ideal multiplier mixer: LO on axis 1, sheared RF, product into a load
/// resistor. Returns `(circuit, out_index)`.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn multiplier_mixer(f1: f64, fd: f64, bits: Vec<bool>) -> Result<(Circuit, usize)> {
    let mut b = CircuitBuilder::new();
    let lo = b.node("lo");
    let rf = b.node("rf");
    let out = b.node("out");
    b.vsource(
        "VLO",
        lo,
        GROUND,
        BiWaveform::Axis1(Waveform::cosine(1.0, f1)),
    )?;
    let envelope = if bits.is_empty() {
        Envelope::Unit
    } else {
        Envelope::bits(bits, 0.05)
    };
    b.vsource(
        "VRF",
        rf,
        GROUND,
        BiWaveform::ShearedCarrier {
            amplitude: 1.0,
            k: 1,
            f1,
            fd,
            phase: 0.0,
            envelope,
        },
    )?;
    b.multiplier("MIX", out, GROUND, lo, GROUND, rf, GROUND, 1e-3)?;
    b.resistor("RL", out, GROUND, 1e3)?;
    let ckt = b.build()?;
    let idx = ckt
        .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
        .expect("not ground");
    Ok((ckt, idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixtures_build() {
        assert!(rc_lowpass(1e3, 1e-9, Waveform::Dc(1.0)).is_ok());
        assert!(rc_sheared(1e3, 1e-9, 1e6, 1e3, 1.0).is_ok());
        assert!(diode_rectifier(1e6, 2.0).is_ok());
        assert!(rlc_series(10.0, 1e-3, 1e-9).is_ok());
        assert!(multiplier_mixer(1e6, 1e3, vec![true, false]).is_ok());
    }

    #[test]
    fn sheared_fixture_supports_bivariate() {
        let (ckt, _) = rc_sheared(1e3, 1e-9, 1e6, 1e3, 1.0).expect("build");
        assert!(ckt.supports_bivariate());
        let (ckt2, _) = multiplier_mixer(1e6, 1e3, vec![]).expect("build");
        assert!(ckt2.supports_bivariate());
    }
}
