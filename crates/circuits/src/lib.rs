//! Reference circuits for the DAC 2002 reproduction.
//!
//! * [`balanced_mixer`] — the paper's §3 CMOS balanced LO-doubling
//!   down-conversion mixer (adapted from Zhang/Chen/Lau, RAWCON 2000):
//!   a lower MOSFET pair doubles the 450 MHz LO; the doubled current feeds
//!   an upper differential pair that mixes the ~900 MHz RF down to a 15 kHz
//!   baseband.
//! * [`unbalanced_mixer`] — a single-device switching mixer
//!   (Pihl/Christensen/Braun, ISCAS 2001 style) for the unbalanced
//!   comparison.
//! * [`fixtures`] — small linear/nonlinear test circuits shared by tests
//!   and benches.

pub mod balanced_mixer;
pub mod fixtures;
pub mod unbalanced_mixer;

pub use balanced_mixer::{BalancedMixer, BalancedMixerParams};
pub use unbalanced_mixer::{UnbalancedMixer, UnbalancedMixerParams};
