//! The balanced LO-doubling down-conversion mixer of the paper's §3.
//!
//! Topology (reconstructed from the paper's description of [Zhang/Chen/Lau
//! RAWCON 2000]):
//!
//! ```text
//!        VDD
//!       ┌─┴──────┐
//!      RD1      RD2
//!       │        │
//!     out_p    out_n          ← differential output (Figure 3/4)
//!       │        │
//!      M1─┐    ┌─M2           ← upper pair: gates driven by ±RF
//!         └─com┘              ← common node (Figure 5/6 "sources")
//!           │
//!      ┌────┴────┐
//!     M3         M4           ← lower pair: gates driven by ±LO
//!      │          │           (square-law ⇒ common current at 2·f_LO)
//!     gnd        gnd
//! ```
//!
//! The lower differential pair's drain currents sum to
//! `β(v_gt² + a²sin²ωt)` — a current at **twice** the LO frequency — so the
//! RF tone near `2·f_LO` mixes down to `fd = 2·f_LO − f_RF` (eq. 12/13 of
//! the paper; 15 kHz for the default parameters).

use rfsim_circuit::{
    BiWaveform, Circuit, CircuitBuilder, Envelope, MosfetParams, Result, Waveform, GROUND,
};

/// Parameters of the balanced mixer.
#[derive(Debug, Clone)]
pub struct BalancedMixerParams {
    /// LO frequency `f1` (doubled internally). Paper: 450 MHz.
    pub f_lo: f64,
    /// Baseband difference frequency `fd = 2·f1 − f_rf`. Paper: 15 kHz.
    pub fd: f64,
    /// LO drive amplitude per side (V).
    pub lo_amplitude: f64,
    /// LO gate bias (V); keeps the lower pair near its square-law region.
    pub lo_bias: f64,
    /// RF drive amplitude per side (V).
    pub rf_amplitude: f64,
    /// RF gate bias (V).
    pub rf_bias: f64,
    /// Bit pattern modulating the RF carrier (empty = pure tone).
    pub rf_bits: Vec<bool>,
    /// Raised-cosine edge fraction of each bit slot.
    pub bit_edge_fraction: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Drain load resistors (Ω).
    pub rd: f64,
    /// Output node capacitance to ground (F) per side.
    pub cl: f64,
    /// Extra capacitance at the common node (F).
    pub c_common: f64,
    /// Upper-pair device parameters.
    pub upper: MosfetParams,
    /// Lower-pair device parameters.
    pub lower: MosfetParams,
}

impl Default for BalancedMixerParams {
    fn default() -> Self {
        // Capacitances sized for 900 MHz operation: the output pole
        // (RD·C_out ≈ 1k·60 fF → 2.6 GHz) stays above the doubled LO, which
        // keeps the conversion gain healthy (≈ +8 dB at default drive).
        let upper = MosfetParams {
            kp: 120e-6,
            vt0: 0.5,
            lambda: 0.05,
            w: 40e-6,
            l: 0.35e-6,
            cgs: 15e-15,
            cgd: 4e-15,
            cdb: 8e-15,
            csb: 8e-15,
            ..Default::default()
        };
        let lower = MosfetParams { w: 60e-6, ..upper };
        BalancedMixerParams {
            f_lo: 450e6,
            fd: 15e3,
            lo_amplitude: 0.4,
            lo_bias: 0.75,
            rf_amplitude: 0.05,
            rf_bias: 1.9,
            rf_bits: vec![true, false, true, true],
            bit_edge_fraction: 0.08,
            vdd: 3.0,
            rd: 1e3,
            cl: 40e-15,
            c_common: 10e-15,
            upper,
            lower,
        }
    }
}

impl BalancedMixerParams {
    /// The RF carrier frequency `f_rf = 2·f_lo − fd`.
    pub fn f_rf(&self) -> f64 {
        2.0 * self.f_lo - self.fd
    }

    /// Fast-axis (LO) period.
    pub fn t1_period(&self) -> f64 {
        1.0 / self.f_lo
    }

    /// Slow-axis (difference) period.
    pub fn t2_period(&self) -> f64 {
        1.0 / self.fd
    }
}

/// The built mixer with its probe points resolved to unknown indices.
#[derive(Debug)]
pub struct BalancedMixer {
    /// The circuit.
    pub circuit: Circuit,
    /// Unknown index of the positive output node.
    pub out_p: usize,
    /// Unknown index of the negative output node.
    pub out_n: usize,
    /// Unknown index of the upper pair's common source node
    /// (the sharp doubled-frequency waveform of Figures 5–6).
    pub common: usize,
    /// The parameters used.
    pub params: BalancedMixerParams,
}

impl BalancedMixer {
    /// Builds the mixer netlist.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the builder.
    pub fn build(params: BalancedMixerParams) -> Result<Self> {
        let p = &params;
        let mut b = CircuitBuilder::new();
        let vdd = b.node("vdd");
        let out_p = b.node("out_p");
        let out_n = b.node("out_n");
        let com = b.node("com");
        let lo_p = b.node("lo_p");
        let lo_n = b.node("lo_n");
        let rf_p = b.node("rf_p");
        let rf_n = b.node("rf_n");
        let rf_bias = b.node("rf_bias");

        b.vsource("VDD", vdd, GROUND, Waveform::Dc(p.vdd))?;
        b.resistor("RD1", vdd, out_p, p.rd)?;
        b.resistor("RD2", vdd, out_n, p.rd)?;
        b.capacitor("CL1", out_p, GROUND, p.cl)?;
        b.capacitor("CL2", out_n, GROUND, p.cl)?;
        b.capacitor("CCOM", com, GROUND, p.c_common)?;

        // LO drive: antiphase sines on the t1 axis with gate bias as offset.
        b.vsource(
            "VLOP",
            lo_p,
            GROUND,
            BiWaveform::Axis1(Waveform::Sine {
                amplitude: p.lo_amplitude,
                freq: p.f_lo,
                phase: 0.0,
                offset: p.lo_bias,
            }),
        )?;
        b.vsource(
            "VLON",
            lo_n,
            GROUND,
            BiWaveform::Axis1(Waveform::Sine {
                amplitude: -p.lo_amplitude,
                freq: p.f_lo,
                phase: 0.0,
                offset: p.lo_bias,
            }),
        )?;

        // RF drive: sheared carrier at 2·f_lo − fd (k = 2), differential
        // around a common bias.
        let envelope = if p.rf_bits.is_empty() {
            Envelope::Unit
        } else {
            Envelope::bits(p.rf_bits.clone(), p.bit_edge_fraction)
        };
        b.vsource("VRFB", rf_bias, GROUND, Waveform::Dc(p.rf_bias))?;
        b.vsource(
            "VRFP",
            rf_p,
            rf_bias,
            BiWaveform::ShearedCarrier {
                amplitude: p.rf_amplitude,
                k: 2,
                f1: p.f_lo,
                fd: p.fd,
                phase: 0.0,
                envelope: envelope.clone(),
            },
        )?;
        b.vsource(
            "VRFN",
            rf_n,
            rf_bias,
            BiWaveform::ShearedCarrier {
                amplitude: -p.rf_amplitude,
                k: 2,
                f1: p.f_lo,
                fd: p.fd,
                phase: 0.0,
                envelope,
            },
        )?;

        // Upper mixing pair.
        b.mosfet("M1", out_p, rf_p, com, p.upper)?;
        b.mosfet("M2", out_n, rf_n, com, p.upper)?;
        // Lower doubling pair.
        b.mosfet("M3", com, lo_p, GROUND, p.lower)?;
        b.mosfet("M4", com, lo_n, GROUND, p.lower)?;

        let circuit = b.build()?;
        let idx = |name: &str| {
            circuit
                .unknown_index_of_node(circuit.node_by_name(name).expect("node exists"))
                .expect("not ground")
        };
        Ok(BalancedMixer {
            out_p: idx("out_p"),
            out_n: idx("out_n"),
            common: idx("com"),
            circuit,
            params,
        })
    }

    /// Differential output `v(out_p) − v(out_n)` from a state vector.
    pub fn differential_output(&self, state: &[f64]) -> f64 {
        state[self.out_p] - state[self.out_n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::dcop::dc_operating_point;

    #[test]
    fn paper_frequencies() {
        let p = BalancedMixerParams::default();
        assert!((p.f_rf() - (900e6 - 15e3)).abs() < 1.0);
        assert!((p.t2_period() - 1.0 / 15e3).abs() < 1e-12);
    }

    #[test]
    fn dc_operating_point_is_sane() {
        // Zero RF drive for exact symmetry (a live RF source contributes its
        // t = 0 value, ±A/2, at DC — physical, but not what we test here).
        let mixer = BalancedMixer::build(BalancedMixerParams {
            rf_amplitude: 0.0,
            rf_bits: vec![],
            ..Default::default()
        })
        .expect("build");
        let op = dc_operating_point(&mixer.circuit, Default::default()).expect("dc");
        let vp = op.solution[mixer.out_p];
        let vn = op.solution[mixer.out_n];
        let vc = op.solution[mixer.common];
        // Balanced: outputs equal at DC; all nodes within the rails.
        assert!(
            (vp - vn).abs() < 1e-6,
            "balanced outputs at DC: {vp} vs {vn}"
        );
        assert!(vp > 0.5 && vp < 3.0, "output inside rails: {vp}");
        assert!(vc > 0.0 && vc < vp, "common node below outputs: {vc}");
        // Lower pair actually conducts: voltage drop across loads.
        assert!(3.0 - vp > 0.05, "load current flows: drop {}", 3.0 - vp);
    }

    #[test]
    fn mixer_supports_bivariate_sources() {
        let mixer = BalancedMixer::build(BalancedMixerParams::default()).expect("build");
        assert!(mixer.circuit.supports_bivariate());
    }

    #[test]
    fn doubler_produces_second_harmonic_current() {
        // Drive only the LO (RF amplitude 0): the common node waveform
        // should be dominated by the 2·f_LO component, the doubler action.
        let mut params = BalancedMixerParams {
            rf_amplitude: 0.0,
            rf_bits: vec![],
            ..Default::default()
        };
        // Scale to a lower frequency for a quick transient check.
        params.f_lo = 1e6;
        params.fd = 10e3;
        let mixer = BalancedMixer::build(params).expect("build");
        let res = rfsim_circuit::transient::transient(
            &mixer.circuit,
            rfsim_circuit::transient::TransientOptions {
                t_stop: 4e-6,
                dt_init: 2e-9,
                dt_max: 4e-9,
                adaptive: false,
                ..Default::default()
            },
        )
        .expect("transient");
        // Use the last 2 periods for spectrum (steady after RC settles).
        let n = res.len();
        let tail: Vec<f64> = (n - 1000..n).map(|k| res.state(k)[mixer.common]).collect();
        // 1000 samples at 2 ns = 2 µs = 2 LO periods.
        let h1 = rfsim_numerics::fft::harmonic_amplitude(&tail, 2); // f_LO
        let h2 = rfsim_numerics::fft::harmonic_amplitude(&tail, 4); // 2·f_LO
        assert!(
            h2 > 3.0 * h1,
            "common node is frequency-doubled: |f_LO|={h1}, |2f_LO|={h2}"
        );
    }
}
