//! Property suite: canonical round-trip and parser-never-panics.
//!
//! The generators live in `rfsim_netlist::fuzz` (shared with the CI
//! `fuzz-smoke` binary) and are pure functions of their seed, so any
//! failure reproduces from the printed case number.

use proptest::prelude::*;
use rfsim_netlist::fuzz::{mutate, random_netlist, random_token_soup, XorShift64};
use rfsim_netlist::Netlist;

/// Inline seeds for the mutation property: one netlist per analysis
/// directive, small enough to mutate thousands of times per test run.
const SEEDS: [&str; 5] = [
    "V V1 in gnd dc 1\nR R1 in out 1k\nR R2 out gnd 2k\n.analysis dcop\n",
    "V V1 in gnd sine amp=1 freq=1M phase=0 offset=0\nR R1 in out 1k\nC C1 out gnd 160p\n\
     .analysis transient tstop=2u dt=10n\n",
    "V V1 in gnd drive\nR R1 in out 1k\nC C1 out gnd 160p\n.sweep amplitudes=0.5,1 spacings=1k\n\
     .analysis mpde f1=1M n1=8 n2=4\n",
    "V V1 in gnd drive\nR R1 in out 1k\nD D1 out gnd is=1e-14 n=1 cj0=0 tt=0\n\
     C C1 out gnd 1n\n.sweep amplitudes=1 spacings=1k\n.analysis hb2 f1=1M n1=8 n2=4\n",
    "V V1 in gnd drive\nR R1 in out 1k\nC C1 out gnd 1n\n.sweep amplitudes=1\n\
     .analysis periodic_fd f1=1M n1=16\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn canonical_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = XorShift64::new(seed);
        let netlist = random_netlist(&mut rng);
        let text = netlist.canonical();
        let reparsed = match Netlist::parse(&text) {
            Ok(n) => n,
            Err(e) => panic!("canonical text must parse, got '{e}' for:\n{text}"),
        };
        prop_assert_eq!(&netlist, &reparsed, "round trip changed the AST for:\n{}", text);
        // Canonical form is a fixed point of parse∘canonical.
        prop_assert_eq!(reparsed.canonical(), text);
    }

    #[test]
    fn parser_never_panics_on_byte_mutations(seed in 0u64..u64::MAX) {
        let mut rng = XorShift64::new(seed);
        let base = SEEDS[rng.below(SEEDS.len())];
        for _ in 0..16 {
            let mutated = mutate(&mut rng, base.as_bytes(), 8);
            let text = String::from_utf8_lossy(&mutated);
            // Ok or typed Err — never a panic, and errors always Display.
            if let Err(e) = Netlist::parse(&text) {
                let _ = e.to_string();
            }
        }
    }

    #[test]
    fn parser_never_panics_on_token_soup(seed in 0u64..u64::MAX) {
        let mut rng = XorShift64::new(seed);
        for _ in 0..8 {
            let text = random_token_soup(&mut rng);
            if let Err(e) = Netlist::parse(&text) {
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn the_mutation_seeds_themselves_parse() {
    for seed in SEEDS {
        let netlist = Netlist::parse(seed).expect("seed parses");
        let canon = netlist.canonical();
        assert_eq!(Netlist::parse(&canon).expect("canonical parses"), netlist);
    }
}
