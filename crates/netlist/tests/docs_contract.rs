//! Documentation contract: `docs/netlist.md` and the parser's public
//! keyword tables must agree *in both directions*.
//!
//! The doc's statement tables spell each keyword as an inline-code
//! cell at the start of a table row (`| `keyword` | … |`). This test
//! extracts those and checks set equality against the crate's
//! `DEVICE_KEYWORDS` / `DIRECTIVE_KEYWORDS` / `SOURCE_KEYWORDS` /
//! `ANALYSIS_KEYWORDS`. Add a statement to the parser without
//! documenting it — or document one that doesn't exist — and this
//! fails.

use std::collections::BTreeSet;
use std::path::Path;

use rfsim_netlist::parse::{
    ANALYSIS_KEYWORDS, DEVICE_KEYWORDS, DIRECTIVE_KEYWORDS, SOURCE_KEYWORDS,
};

fn doc_text() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/netlist.md");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("docs/netlist.md must exist ({}): {e}", path.display()))
}

/// First-column inline-code cells of every markdown table row:
/// `| `R` | … |` → `R`.
fn documented_keywords(doc: &str) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    for line in doc.lines() {
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        if let Some(end) = rest.find('`') {
            found.insert(rest[..end].to_string());
        }
    }
    found
}

#[test]
fn every_parser_keyword_is_documented_and_vice_versa() {
    let doc = doc_text();
    let documented = documented_keywords(&doc);

    let parser: BTreeSet<String> = DEVICE_KEYWORDS
        .iter()
        .chain(&DIRECTIVE_KEYWORDS)
        .chain(&SOURCE_KEYWORDS)
        .chain(&ANALYSIS_KEYWORDS)
        .map(|s| (*s).to_string())
        .collect();

    let undocumented: Vec<&String> = parser.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "parser keywords missing from docs/netlist.md tables: {undocumented:?}"
    );
    let phantom: Vec<&String> = documented.difference(&parser).collect();
    assert!(
        phantom.is_empty(),
        "docs/netlist.md documents keywords the parser does not accept: {phantom:?}"
    );
}

#[test]
fn the_docs_quickstart_netlist_paths_exist() {
    // The doc's quickstart drives real corpus files; keep them honest.
    let doc = doc_text();
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for token in doc.split_whitespace() {
        let token = token.trim_end_matches(['\\', ')', ',', '.']);
        if token.starts_with("test_cases/") && token.ends_with(".rfn") {
            assert!(
                repo.join(token).exists(),
                "docs/netlist.md references missing corpus file {token}"
            );
        }
    }
}
