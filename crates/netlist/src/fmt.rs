//! The canonical `.rfn` formatter.
//!
//! One normal form: title, node declarations (one `.node` line), devices
//! in source order, `.sweep`, `.analysis` — every parameter printed
//! explicitly, floats in Rust's shortest-roundtrip `Display` form (the
//! same convention the wire protocol's JSON encoder uses). Because the
//! AST stores resolved values and the parser resolves defaults the same
//! way, `parse(canonical(x)) == x` for every valid netlist, and the
//! canonical text's hash is a stable identity for memoisation.

use std::fmt::Write;

use crate::ast::{Analysis, DeviceKind, Netlist, Source};

/// Shortest-roundtrip float form (Rust `Display`, e.g. `0.001`, `1e-9`).
fn num(x: f64) -> String {
    format!("{x}")
}

fn list(values: &[f64]) -> String {
    values.iter().map(|&v| num(v)).collect::<Vec<_>>().join(",")
}

fn push_source(out: &mut String, source: &Source) {
    match source {
        Source::Dc(v) => {
            let _ = write!(out, "dc {}", num(*v));
        }
        Source::Sine {
            amplitude,
            freq,
            phase,
            offset,
        } => {
            let _ = write!(
                out,
                "sine amp={} freq={} phase={} offset={}",
                num(*amplitude),
                num(*freq),
                num(*phase),
                num(*offset)
            );
        }
        Source::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => {
            let _ = write!(
                out,
                "pulse v1={} v2={} delay={} rise={} fall={} width={} period={}",
                num(*v1),
                num(*v2),
                num(*delay),
                num(*rise),
                num(*fall),
                num(*width),
                num(*period)
            );
        }
        Source::Pwl(points) => {
            let _ = write!(out, "pwl");
            for (t, v) in points {
                let _ = write!(out, " {}:{}", num(*t), num(*v));
            }
        }
        Source::Tone {
            amplitude,
            k,
            f1,
            fd,
            phase,
            bits,
            edge,
        } => {
            let _ = write!(
                out,
                "tone amp={} k={k} f1={} fd={} phase={}",
                num(*amplitude),
                num(*f1),
                num(*fd),
                num(*phase)
            );
            if !bits.is_empty() {
                let pattern: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
                let _ = write!(out, " bits={pattern} edge={}", num(*edge));
            }
        }
        Source::Lo { amplitude, freq } => {
            let _ = write!(out, "lo amp={} freq={}", num(*amplitude), num(*freq));
        }
        Source::Drive => out.push_str("drive"),
    }
}

/// Formats `netlist` into its canonical text.
#[must_use]
pub fn canonical(netlist: &Netlist) -> String {
    let mut out = String::new();
    if let Some(title) = &netlist.title {
        let _ = writeln!(out, ".title {title}");
    }
    if !netlist.nodes.is_empty() {
        let _ = writeln!(out, ".node {}", netlist.nodes.join(" "));
    }
    for device in &netlist.devices {
        let name = &device.name;
        match &device.kind {
            DeviceKind::Resistor { a, b, ohms } => {
                let _ = writeln!(out, "R {name} {a} {b} {}", num(*ohms));
            }
            DeviceKind::Capacitor { a, b, farads } => {
                let _ = writeln!(out, "C {name} {a} {b} {}", num(*farads));
            }
            DeviceKind::Inductor { a, b, henries } => {
                let _ = writeln!(out, "L {name} {a} {b} {}", num(*henries));
            }
            DeviceKind::Diode {
                anode,
                cathode,
                is,
                n,
                cj0,
                tt,
            } => {
                let _ = writeln!(
                    out,
                    "D {name} {anode} {cathode} is={} n={} cj0={} tt={}",
                    num(*is),
                    num(*n),
                    num(*cj0),
                    num(*tt)
                );
            }
            DeviceKind::VSource { p, n, source } => {
                let _ = write!(out, "V {name} {p} {n} ");
                push_source(&mut out, source);
                out.push('\n');
            }
            DeviceKind::ISource { p, n, source } => {
                let _ = write!(out, "I {name} {p} {n} ");
                push_source(&mut out, source);
                out.push('\n');
            }
            DeviceKind::Multiplier {
                p,
                n,
                xp,
                xn,
                yp,
                yn,
                gain,
            } => {
                let _ = writeln!(out, "MUL {name} {p} {n} {xp} {xn} {yp} {yn} {}", num(*gain));
            }
            DeviceKind::Vccs { p, n, cp, cn, gm } => {
                let _ = writeln!(out, "VCCS {name} {p} {n} {cp} {cn} {}", num(*gm));
            }
            DeviceKind::Vcvs { p, n, cp, cn, gain } => {
                let _ = writeln!(out, "VCVS {name} {p} {n} {cp} {cn} {}", num(*gain));
            }
        }
    }
    if let Some(sweep) = &netlist.sweep {
        let _ = write!(out, ".sweep amplitudes={}", list(&sweep.amplitudes));
        if !sweep.spacings.is_empty() {
            let _ = write!(out, " spacings={}", list(&sweep.spacings));
        }
        out.push('\n');
    }
    let opt_out = |out_node: &Option<String>| match out_node {
        Some(name) => format!(" out={name}"),
        None => String::new(),
    };
    match &netlist.analysis {
        Analysis::Dcop => out.push_str(".analysis dcop\n"),
        Analysis::Transient { t_stop, dt, out: o } => {
            let _ = writeln!(
                out,
                ".analysis transient tstop={} dt={}{}",
                num(*t_stop),
                num(*dt),
                opt_out(o)
            );
        }
        Analysis::Mpde { f1, n1, n2, out: o } => {
            let _ = writeln!(
                out,
                ".analysis mpde f1={} n1={n1} n2={n2}{}",
                num(*f1),
                opt_out(o)
            );
        }
        Analysis::Hb2 { f1, n1, n2, out: o } => {
            let _ = writeln!(
                out,
                ".analysis hb2 f1={} n1={n1} n2={n2}{}",
                num(*f1),
                opt_out(o)
            );
        }
        Analysis::PeriodicFd { f1, n1, out: o } => {
            let _ = writeln!(
                out,
                ".analysis periodic_fd f1={} n1={n1}{}",
                num(*f1),
                opt_out(o)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Netlist;

    #[test]
    fn canonical_is_a_fixed_point_and_normalises_spellings() {
        let a = "\
# comment-laden spelling
V V1 in 0 sine amp=1 freq=1000k   # suffixed
R R1 in out 1k
.analysis   transient tstop=1m
";
        let b = "\
V V1 in gnd sine amp=1 freq=1M phase=0 offset=0
R R1 in out 1000
.analysis transient tstop=0.001 dt=0.000005
";
        let na = Netlist::parse(a).expect("a");
        let nb = Netlist::parse(b).expect("b");
        assert_eq!(na.canonical(), nb.canonical());
        assert_eq!(na.content_hash(), nb.content_hash());
        let canon = na.canonical();
        assert_eq!(Netlist::parse(&canon).expect("reparse").canonical(), canon);
    }
}
