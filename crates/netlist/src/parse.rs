//! The hand-rolled `.rfn` parser.
//!
//! Line-oriented: `#` starts a comment anywhere, a leading `*` comments a
//! whole line (SPICE habit), blank lines are ignored, statements never
//! span lines. Every count is capped and every rejection is a typed
//! [`NetlistError`] with a line number — this parser fronts untrusted wire
//! input, so it must never panic and never allocate unboundedly (the fuzz
//! harness in [`crate::fuzz`] enforces exactly that).
//!
//! Optional parameters are resolved to their defaults here, so the AST
//! compares by meaning and the canonical formatter can print everything
//! explicitly (see [`crate::ast`]).

use std::collections::HashSet;

use crate::ast::{Analysis, Device, DeviceKind, Netlist, Source, Sweep};

/// Device statement keywords, in documentation order.
pub const DEVICE_KEYWORDS: [&str; 9] = ["R", "C", "L", "D", "V", "I", "MUL", "VCCS", "VCVS"];
/// Dot-directive keywords.
pub const DIRECTIVE_KEYWORDS: [&str; 4] = [".title", ".node", ".sweep", ".analysis"];
/// Source keywords (the token after a V/I source's nodes).
pub const SOURCE_KEYWORDS: [&str; 7] = ["dc", "sine", "pulse", "pwl", "tone", "lo", "drive"];
/// Analysis keywords (the token after `.analysis`).
pub const ANALYSIS_KEYWORDS: [&str; 5] = ["dcop", "transient", "mpde", "hb2", "periodic_fd"];

/// Largest accepted input (bytes). Wire submissions are untrusted.
pub const MAX_INPUT_BYTES: usize = 1 << 20;
/// Largest accepted single line (bytes).
pub const MAX_LINE_BYTES: usize = 4096;
/// Largest accepted device count.
pub const MAX_DEVICES: usize = 4096;
/// Largest accepted distinct non-ground node count.
pub const MAX_NODES: usize = 4096;
/// Largest accepted device/node name (bytes).
pub const MAX_NAME_BYTES: usize = 64;
/// Largest accepted PWL breakpoint list.
pub const MAX_PWL_POINTS: usize = 1024;
/// Largest accepted bit-envelope pattern.
pub const MAX_BITS: usize = 4096;
/// Largest accepted amplitude/spacing sweep list (matches the serve
/// tier's `JobSpec::MAX_SWEEP_VALUES`).
pub const MAX_SWEEP_VALUES: usize = 4096;
/// Largest accepted grid axis (matches `JobSpec::MAX_AXIS_POINTS`).
pub const MAX_AXIS_POINTS: usize = 4096;
/// Largest accepted `n1 × n2` grid (matches `JobSpec::MAX_GRID_POINTS`).
pub const MAX_GRID_POINTS: usize = 262_144;
/// Largest accepted `tstop / dt` transient step count.
pub const MAX_TRANSIENT_STEPS: f64 = 2e6;

/// A typed parse/validation failure: the offending line (0 for
/// whole-file rules) and the first violated rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistError {
    /// 1-based line number; 0 for file-level rules (e.g. a missing
    /// `.analysis`).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for NetlistError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, NetlistError> {
    Err(NetlistError {
        line,
        message: message.into(),
    })
}

/// Parses a token as a finite `f64`, accepting engineering suffixes
/// `f p n u m k M G T` (`M` is mega — unlike SPICE — and suffixes are
/// case-sensitive). Plain forms (`0.5`, `1e-9`) pass through.
///
/// # Errors
///
/// A message (no line number) when the token is not a finite number.
pub fn parse_number(token: &str) -> Result<f64, String> {
    let (mantissa, multiplier) = match token.as_bytes().last() {
        Some(b'f') => (&token[..token.len() - 1], 1e-15),
        Some(b'p') => (&token[..token.len() - 1], 1e-12),
        Some(b'n') => (&token[..token.len() - 1], 1e-9),
        Some(b'u') => (&token[..token.len() - 1], 1e-6),
        Some(b'm') => (&token[..token.len() - 1], 1e-3),
        Some(b'k') => (&token[..token.len() - 1], 1e3),
        Some(b'M') => (&token[..token.len() - 1], 1e6),
        Some(b'G') => (&token[..token.len() - 1], 1e9),
        Some(b'T') => (&token[..token.len() - 1], 1e12),
        _ => (token, 1.0),
    };
    if mantissa.is_empty() {
        return Err(format!("'{token}' is not a number"));
    }
    // "nan"/"inf" parse as f64 but fail the finiteness gate below, which
    // also catches overflowing forms like `1e999` or `1e308k`.
    let value: f64 = mantissa
        .parse()
        .map_err(|_| format!("'{token}' is not a number"))?;
    let scaled = value * multiplier;
    if !scaled.is_finite() {
        return Err(format!("'{token}' is not a finite number"));
    }
    Ok(scaled)
}

/// Whether `name` is a legal device/node name: ASCII alphanumerics and
/// `_`, 1..=[`MAX_NAME_BYTES`] bytes.
#[must_use]
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_BYTES
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

fn is_ground(name: &str) -> bool {
    name == "0" || name == "gnd"
}

/// Stores a terminal token, normalising the `0` ground alias to `gnd`
/// so both spellings produce one canonical AST (and one content hash).
fn node_token(token: &str) -> String {
    if token == "0" {
        "gnd".to_string()
    } else {
        token.to_string()
    }
}

/// `key=value` parameter list with required/optional accessors and an
/// unknown-key check.
struct Params<'a> {
    line: usize,
    entries: Vec<(&'a str, &'a str)>,
    used: Vec<bool>,
}

impl<'a> Params<'a> {
    fn new(line: usize, tokens: &[&'a str]) -> Result<Self, NetlistError> {
        let mut entries: Vec<(&'a str, &'a str)> = Vec::with_capacity(tokens.len());
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return err(line, format!("expected key=value, got '{token}'"));
            };
            if key.is_empty() || value.is_empty() {
                return err(line, format!("expected key=value, got '{token}'"));
            }
            if entries.iter().any(|(k, _)| *k == key) {
                return err(line, format!("duplicate parameter '{key}'"));
            }
            entries.push((key, value));
        }
        let used = vec![false; entries.len()];
        Ok(Params {
            line,
            entries,
            used,
        })
    }

    fn take(&mut self, key: &str) -> Option<&'a str> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if *k == key && !self.used[i] {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn number(&mut self, key: &str) -> Result<f64, NetlistError> {
        match self.take(key) {
            Some(v) => parse_number(v).or_else(|m| err(self.line, m)),
            None => err(self.line, format!("missing required parameter '{key}='")),
        }
    }

    fn number_or(&mut self, key: &str, default: f64) -> Result<f64, NetlistError> {
        match self.take(key) {
            Some(v) => parse_number(v).or_else(|m| err(self.line, m)),
            None => Ok(default),
        }
    }

    fn integer_or(&mut self, key: &str, default: usize, max: usize) -> Result<usize, NetlistError> {
        let x = self.number_or(key, default as f64)?;
        if x < 0.0 || x.fract() != 0.0 || x > max as f64 {
            return err(
                self.line,
                format!("'{key}=' must be an integer in 0..={max}, got {x}"),
            );
        }
        Ok(x as usize)
    }

    fn numbers(&mut self, key: &str) -> Result<Option<Vec<f64>>, NetlistError> {
        let Some(raw) = self.take(key) else {
            return Ok(None);
        };
        let mut values = Vec::new();
        for item in raw.split(',') {
            if values.len() >= MAX_SWEEP_VALUES {
                return err(
                    self.line,
                    format!("'{key}=' lists at most {MAX_SWEEP_VALUES} values"),
                );
            }
            values.push(parse_number(item).or_else(|m| err(self.line, m))?);
        }
        Ok(Some(values))
    }

    fn finish(self) -> Result<(), NetlistError> {
        for (i, (key, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return err(self.line, format!("unknown parameter '{key}='"));
            }
        }
        Ok(())
    }
}

/// Parser state threaded through the line loop.
#[derive(Default)]
struct ParseState {
    title: Option<String>,
    nodes: Vec<String>,
    declared: HashSet<String>,
    devices: Vec<Device>,
    device_names: HashSet<String>,
    node_set: HashSet<String>,
    sweep: Option<Sweep>,
    analysis: Option<Analysis>,
    drive_line: Option<usize>,
}

impl ParseState {
    fn note_node(&mut self, line: usize, name: &str) -> Result<(), NetlistError> {
        if is_ground(name) {
            return Ok(());
        }
        if !valid_name(name) {
            return err(line, format!("invalid node name '{name}'"));
        }
        if self.node_set.insert(name.to_string()) && self.node_set.len() > MAX_NODES {
            return err(line, format!("too many nodes (max {MAX_NODES})"));
        }
        Ok(())
    }

    fn push_device(&mut self, line: usize, device: Device) -> Result<(), NetlistError> {
        if !valid_name(&device.name) {
            return err(line, format!("invalid device name '{}'", device.name));
        }
        if !self.device_names.insert(device.name.clone()) {
            return err(line, format!("duplicate device name '{}'", device.name));
        }
        if self.devices.len() >= MAX_DEVICES {
            return err(line, format!("too many devices (max {MAX_DEVICES})"));
        }
        for terminal in device.kind.terminals() {
            self.note_node(line, terminal)?;
        }
        if matches!(device.kind.source(), Some(Source::Drive)) {
            if self.drive_line.is_some() {
                return err(line, "only one source may be marked 'drive'");
            }
            self.drive_line = Some(line);
        }
        self.devices.push(device);
        Ok(())
    }
}

/// Parses `.rfn` text into a validated [`Netlist`].
///
/// # Errors
///
/// A [`NetlistError`] naming the first offending line and rule.
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    if text.len() > MAX_INPUT_BYTES {
        return err(0, format!("netlist larger than {MAX_INPUT_BYTES} bytes"));
    }
    let mut st = ParseState::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.len() > MAX_LINE_BYTES {
            return err(line, format!("line longer than {MAX_LINE_BYTES} bytes"));
        }
        let body = match raw.find('#') {
            Some(cut) => &raw[..cut],
            None => raw,
        };
        let body = body.trim();
        if body.is_empty() || body.starts_with('*') {
            continue;
        }
        let tokens: Vec<&str> = body.split_whitespace().collect();
        let keyword = tokens[0];
        match keyword {
            ".title" => {
                if st.title.is_some() {
                    return err(line, "duplicate .title");
                }
                let rest = body[".title".len()..].trim();
                if rest.is_empty() {
                    return err(line, ".title needs text");
                }
                if rest.len() > 200 || rest.bytes().any(|b| b.is_ascii_control()) {
                    return err(line, ".title must be printable and at most 200 bytes");
                }
                st.title = Some(rest.to_string());
            }
            ".node" => {
                if tokens.len() < 2 {
                    return err(line, ".node needs at least one node name");
                }
                for name in &tokens[1..] {
                    if is_ground(name) {
                        return err(line, "ground ('0'/'gnd') is implicit, not declarable");
                    }
                    if st.declared.contains(*name) {
                        return err(line, format!("node '{name}' declared twice"));
                    }
                    st.note_node(line, name)?;
                    st.declared.insert((*name).to_string());
                    st.nodes.push((*name).to_string());
                }
            }
            ".sweep" => {
                if st.sweep.is_some() {
                    return err(line, "duplicate .sweep");
                }
                let mut params = Params::new(line, &tokens[1..])?;
                let amplitudes = params
                    .numbers("amplitudes")?
                    .ok_or(())
                    .or_else(|()| err(line, "missing required parameter 'amplitudes='"))?;
                let spacings = params.numbers("spacings")?.unwrap_or_default();
                params.finish()?;
                if amplitudes.is_empty() {
                    return err(line, "'amplitudes=' must list at least one value");
                }
                if spacings.iter().any(|fd| *fd <= 0.0) {
                    return err(line, "'spacings=' values must be positive");
                }
                st.sweep = Some(Sweep {
                    amplitudes,
                    spacings,
                });
            }
            ".analysis" => {
                if st.analysis.is_some() {
                    return err(line, "duplicate .analysis");
                }
                if tokens.len() < 2 {
                    return err(
                        line,
                        format!(".analysis needs a kind ({})", ANALYSIS_KEYWORDS.join("|")),
                    );
                }
                st.analysis = Some(parse_analysis(line, tokens[1], &tokens[2..])?);
            }
            _ if keyword.starts_with('.') => {
                return err(line, format!("unknown directive '{keyword}'"));
            }
            _ => {
                let device = parse_device(line, keyword, &tokens[1..])?;
                st.push_device(line, device)?;
            }
        }
    }
    finish(st)
}

fn parse_analysis(line: usize, kind: &str, rest: &[&str]) -> Result<Analysis, NetlistError> {
    let mut params = Params::new(line, rest)?;
    let analysis = match kind {
        "dcop" => Analysis::Dcop,
        "transient" => {
            let t_stop = params.number("tstop")?;
            if t_stop <= 0.0 {
                return err(line, "'tstop=' must be positive");
            }
            let dt = params.number_or("dt", t_stop / 200.0)?;
            if dt <= 0.0 || dt > t_stop {
                return err(line, "'dt=' must be positive and at most tstop");
            }
            if t_stop / dt > MAX_TRANSIENT_STEPS {
                return err(
                    line,
                    format!("tstop/dt exceeds {MAX_TRANSIENT_STEPS} transient steps"),
                );
            }
            Analysis::Transient {
                t_stop,
                dt,
                out: take_out(&mut params)?,
            }
        }
        "mpde" | "hb2" => {
            let f1 = params.number("f1")?;
            if f1 <= 0.0 {
                return err(line, "'f1=' must be positive");
            }
            let n1 = params.integer_or("n1", 16, MAX_AXIS_POINTS)?;
            let n2 = params.integer_or("n2", 8, MAX_AXIS_POINTS)?;
            if n1 < 2 || n2 < 2 {
                return err(line, "'n1='/'n2=' must be at least 2");
            }
            if n1 * n2 > MAX_GRID_POINTS {
                return err(line, format!("n1*n2 exceeds {MAX_GRID_POINTS} grid points"));
            }
            let out = take_out(&mut params)?;
            if kind == "mpde" {
                Analysis::Mpde { f1, n1, n2, out }
            } else {
                Analysis::Hb2 { f1, n1, n2, out }
            }
        }
        "periodic_fd" => {
            let f1 = params.number("f1")?;
            if f1 <= 0.0 {
                return err(line, "'f1=' must be positive");
            }
            let n1 = params.integer_or("n1", 64, MAX_AXIS_POINTS)?;
            if n1 < 2 {
                return err(line, "'n1=' must be at least 2");
            }
            Analysis::PeriodicFd {
                f1,
                n1,
                out: take_out(&mut params)?,
            }
        }
        _ => {
            return err(
                line,
                format!(
                    "unknown analysis '{kind}' ({})",
                    ANALYSIS_KEYWORDS.join("|")
                ),
            )
        }
    };
    params.finish()?;
    Ok(analysis)
}

fn take_out(params: &mut Params<'_>) -> Result<Option<String>, NetlistError> {
    match params.take("out") {
        None => Ok(None),
        Some(name) => {
            if !valid_name(name) || is_ground(name) {
                return err(params.line, format!("invalid output node '{name}'"));
            }
            Ok(Some(name.to_string()))
        }
    }
}

fn parse_device(line: usize, keyword: &str, rest: &[&str]) -> Result<Device, NetlistError> {
    let arity = |want: usize, what: &str| -> Result<(), NetlistError> {
        if rest.len() != want {
            return err(line, format!("{keyword} expects '{keyword} {what}'"));
        }
        Ok(())
    };
    match keyword {
        "R" | "C" | "L" => {
            arity(4, "name a b value")?;
            let value = parse_number(rest[3]).or_else(|m| err(line, m))?;
            let (a, b) = (node_token(rest[1]), node_token(rest[2]));
            let kind = match keyword {
                "R" => DeviceKind::Resistor { a, b, ohms: value },
                "C" => DeviceKind::Capacitor {
                    a,
                    b,
                    farads: value,
                },
                _ => DeviceKind::Inductor {
                    a,
                    b,
                    henries: value,
                },
            };
            Ok(Device {
                name: rest[0].to_string(),
                kind,
            })
        }
        "D" => {
            if rest.len() < 3 {
                return err(
                    line,
                    "D expects 'D name anode cathode [is=] [n=] [cj0=] [tt=]'",
                );
            }
            let mut params = Params::new(line, &rest[3..])?;
            let kind = DeviceKind::Diode {
                anode: node_token(rest[1]),
                cathode: node_token(rest[2]),
                is: params.number_or("is", 1e-14)?,
                n: params.number_or("n", 1.0)?,
                cj0: params.number_or("cj0", 0.0)?,
                tt: params.number_or("tt", 0.0)?,
            };
            params.finish()?;
            Ok(Device {
                name: rest[0].to_string(),
                kind,
            })
        }
        "V" | "I" => {
            if rest.len() < 4 {
                return err(
                    line,
                    format!(
                        "{keyword} expects '{keyword} name p n <source>' with a source ({})",
                        SOURCE_KEYWORDS.join("|")
                    ),
                );
            }
            let source = parse_source(line, &rest[3..])?;
            let (p, n) = (node_token(rest[1]), node_token(rest[2]));
            let kind = if keyword == "V" {
                DeviceKind::VSource { p, n, source }
            } else {
                DeviceKind::ISource { p, n, source }
            };
            Ok(Device {
                name: rest[0].to_string(),
                kind,
            })
        }
        "MUL" => {
            arity(8, "name p n xp xn yp yn gain")?;
            Ok(Device {
                name: rest[0].to_string(),
                kind: DeviceKind::Multiplier {
                    p: node_token(rest[1]),
                    n: node_token(rest[2]),
                    xp: node_token(rest[3]),
                    xn: node_token(rest[4]),
                    yp: node_token(rest[5]),
                    yn: node_token(rest[6]),
                    gain: parse_number(rest[7]).or_else(|m| err(line, m))?,
                },
            })
        }
        "VCCS" | "VCVS" => {
            arity(6, "name p n cp cn value")?;
            let value = parse_number(rest[5]).or_else(|m| err(line, m))?;
            let (p, n) = (node_token(rest[1]), node_token(rest[2]));
            let (cp, cn) = (node_token(rest[3]), node_token(rest[4]));
            let kind = if keyword == "VCCS" {
                DeviceKind::Vccs {
                    p,
                    n,
                    cp,
                    cn,
                    gm: value,
                }
            } else {
                DeviceKind::Vcvs {
                    p,
                    n,
                    cp,
                    cn,
                    gain: value,
                }
            };
            Ok(Device {
                name: rest[0].to_string(),
                kind,
            })
        }
        _ => err(
            line,
            format!(
                "unknown statement '{keyword}' (devices: {}; directives: {})",
                DEVICE_KEYWORDS.join("|"),
                DIRECTIVE_KEYWORDS.join("|")
            ),
        ),
    }
}

fn parse_source(line: usize, tokens: &[&str]) -> Result<Source, NetlistError> {
    let keyword = tokens[0];
    let rest = &tokens[1..];
    match keyword {
        "dc" => {
            if rest.len() != 1 {
                return err(line, "dc expects exactly one value");
            }
            Ok(Source::Dc(parse_number(rest[0]).or_else(|m| err(line, m))?))
        }
        "sine" => {
            let mut params = Params::new(line, rest)?;
            let amplitude = params.number("amp")?;
            let freq = params.number("freq")?;
            if freq <= 0.0 {
                return err(line, "'freq=' must be positive");
            }
            let source = Source::Sine {
                amplitude,
                freq,
                phase: params.number_or("phase", 0.0)?,
                offset: params.number_or("offset", 0.0)?,
            };
            params.finish()?;
            Ok(source)
        }
        "pulse" => {
            let mut params = Params::new(line, rest)?;
            let v1 = params.number("v1")?;
            let v2 = params.number("v2")?;
            let period = params.number("period")?;
            if period <= 0.0 {
                return err(line, "'period=' must be positive");
            }
            let source = Source::Pulse {
                v1,
                v2,
                delay: params.number_or("delay", 0.0)?,
                rise: params.number_or("rise", period / 100.0)?,
                fall: params.number_or("fall", period / 100.0)?,
                width: params.number_or("width", period / 2.0)?,
                period,
            };
            params.finish()?;
            if let Source::Pulse {
                delay,
                rise,
                fall,
                width,
                ..
            } = source
            {
                if delay < 0.0 || rise < 0.0 || fall < 0.0 || width < 0.0 {
                    return err(line, "pulse timings must be non-negative");
                }
            }
            Ok(source)
        }
        "pwl" => {
            if rest.len() < 2 {
                return err(line, "pwl expects at least two t:v breakpoints");
            }
            if rest.len() > MAX_PWL_POINTS {
                return err(line, format!("pwl lists at most {MAX_PWL_POINTS} points"));
            }
            let mut points = Vec::with_capacity(rest.len());
            let mut last_t = f64::NEG_INFINITY;
            for token in rest {
                let Some((t, v)) = token.split_once(':') else {
                    return err(line, format!("pwl breakpoint '{token}' is not t:v"));
                };
                let t = parse_number(t).or_else(|m| err(line, m))?;
                let v = parse_number(v).or_else(|m| err(line, m))?;
                if t < last_t {
                    return err(line, "pwl times must be non-decreasing");
                }
                last_t = t;
                points.push((t, v));
            }
            Ok(Source::Pwl(points))
        }
        "tone" => {
            let mut params = Params::new(line, rest)?;
            let amplitude = params.number("amp")?;
            let f1 = params.number("f1")?;
            let fd = params.number("fd")?;
            if f1 <= 0.0 || fd <= 0.0 {
                return err(line, "'f1='/'fd=' must be positive");
            }
            let k = params.integer_or("k", 1, 64)?;
            if k == 0 {
                return err(line, "'k=' must be at least 1");
            }
            let phase = params.number_or("phase", 0.0)?;
            let bits = match params.take("bits") {
                None => Vec::new(),
                Some(pattern) => {
                    if pattern.is_empty() || pattern.len() > MAX_BITS {
                        return err(
                            line,
                            format!("'bits=' must be 1..={MAX_BITS} binary digits"),
                        );
                    }
                    let mut bits = Vec::with_capacity(pattern.len());
                    for c in pattern.chars() {
                        match c {
                            '0' => bits.push(false),
                            '1' => bits.push(true),
                            _ => return err(line, "'bits=' must contain only 0 and 1"),
                        }
                    }
                    bits
                }
            };
            let edge = match params.take("edge") {
                None => {
                    if bits.is_empty() {
                        0.0
                    } else {
                        0.05
                    }
                }
                Some(v) => {
                    if bits.is_empty() {
                        return err(line, "'edge=' requires 'bits='");
                    }
                    let edge = parse_number(v).or_else(|m| err(line, m))?;
                    if !(0.0..=0.5).contains(&edge) {
                        return err(line, "'edge=' must be in 0..=0.5");
                    }
                    edge
                }
            };
            params.finish()?;
            Ok(Source::Tone {
                amplitude,
                k: k as u32,
                f1,
                fd,
                phase,
                bits,
                edge,
            })
        }
        "lo" => {
            let mut params = Params::new(line, rest)?;
            let amplitude = params.number("amp")?;
            let freq = params.number("freq")?;
            if freq <= 0.0 {
                return err(line, "'freq=' must be positive");
            }
            params.finish()?;
            Ok(Source::Lo { amplitude, freq })
        }
        "drive" => {
            if !rest.is_empty() {
                return err(line, "drive takes no parameters");
            }
            Ok(Source::Drive)
        }
        _ => err(
            line,
            format!("unknown source '{keyword}' ({})", SOURCE_KEYWORDS.join("|")),
        ),
    }
}

fn finish(st: ParseState) -> Result<Netlist, NetlistError> {
    let Some(analysis) = st.analysis else {
        return err(0, "missing .analysis directive");
    };
    if st.devices.is_empty() {
        return err(0, "netlist has no devices");
    }
    if let Some(out) = analysis.out() {
        if !st.node_set.contains(out) {
            return err(0, format!("output node '{out}' does not exist"));
        }
    }
    if analysis.is_steady_state() {
        let drives = st
            .devices
            .iter()
            .filter(|d| matches!(d.kind.source(), Some(Source::Drive)))
            .count();
        if drives != 1 {
            return err(
                0,
                format!(
                    "a {} analysis needs exactly one source marked 'drive'",
                    analysis.keyword()
                ),
            );
        }
        let Some(sweep) = &st.sweep else {
            return err(
                0,
                format!(
                    "a {} analysis needs a .sweep with amplitudes",
                    analysis.keyword()
                ),
            );
        };
        if analysis.is_two_tone() {
            if sweep.spacings.is_empty() {
                return err(
                    0,
                    format!(
                        "a {} analysis needs .sweep spacings (tone spacings fd)",
                        analysis.keyword()
                    ),
                );
            }
            for device in &st.devices {
                if let Some(source) = device.kind.source() {
                    if !source.is_bivariate_capable() {
                        return err(
                            0,
                            format!(
                                "source '{}' on device '{}' is single-time; {} needs dc, tone, \
                                 lo, or drive sources",
                                source.keyword(),
                                device.name,
                                analysis.keyword()
                            ),
                        );
                    }
                }
            }
        } else if !sweep.spacings.is_empty() {
            return err(0, ".sweep spacings only apply to two-tone analyses");
        }
    } else {
        if st.drive_line.is_some() {
            return err(
                st.drive_line.unwrap_or(0),
                "a 'drive' source requires a steady-state analysis (mpde|hb2|periodic_fd)",
            );
        }
        if st.sweep.is_some() {
            return err(0, ".sweep only applies to steady-state analyses");
        }
    }
    Ok(Netlist {
        title: st.title,
        nodes: st.nodes,
        devices: st.devices,
        sweep: st.sweep,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const RC: &str = "\
.title rc lowpass
.node in out
V V1 in gnd sine amp=1 freq=1M phase=0 offset=0
R R1 in out 1k
C C1 out gnd 160p
.analysis transient tstop=2u dt=10n
";

    #[test]
    fn parses_the_basic_rc() {
        let netlist = parse(RC).expect("parse");
        assert_eq!(netlist.title.as_deref(), Some("rc lowpass"));
        assert_eq!(netlist.nodes, vec!["in".to_string(), "out".to_string()]);
        assert_eq!(netlist.devices.len(), 3);
        assert!(matches!(netlist.analysis, Analysis::Transient { .. }));
        match &netlist.devices[1].kind {
            DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 1e3),
            other => panic!("expected resistor, got {other:?}"),
        }
    }

    #[test]
    fn engineering_suffixes_resolve() {
        assert_eq!(parse_number("1k").unwrap(), 1e3);
        assert_eq!(parse_number("160p").unwrap(), 160e-12);
        assert_eq!(parse_number("2.5M").unwrap(), 2.5e6);
        assert_eq!(parse_number("1e-9").unwrap(), 1e-9);
        assert_eq!(parse_number("-3m").unwrap(), -3e-3);
        assert!(parse_number("nan").is_err());
        assert!(parse_number("inf").is_err());
        assert!(parse_number("1e999").is_err());
        assert!(parse_number("k").is_err());
        assert!(parse_number("").is_err());
        assert!(parse_number("1kk").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = ".analysis dcop\nR R1 in out 1k\nR R1 in out 2k\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate device name"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n* spice-style comment\n\nR R1 in gnd 1k # trailing\n.analysis dcop\n";
        let netlist = parse(text).expect("parse");
        assert_eq!(netlist.devices.len(), 1);
    }

    #[test]
    fn nan_parameters_are_refused() {
        // "nan" loses its trailing byte to the nano suffix and fails the
        // mantissa parse; "1e999" parses but fails the finiteness gate.
        let e = parse("V V1 in gnd dc nan\n.analysis dcop\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("is not a number"), "{e}");
        let e = parse("V V1 in gnd dc 1e999\n.analysis dcop\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("not a finite number"), "{e}");
    }

    #[test]
    fn huge_node_counts_are_refused() {
        let mut text = String::new();
        for chunk in 0..(MAX_NODES / 64 + 2) {
            text.push_str(".node");
            for i in 0..64 {
                text.push_str(&format!(" huge{}_{}", chunk, i));
            }
            text.push('\n');
        }
        text.push_str("R R1 huge0_0 gnd 1k\n.analysis dcop\n");
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("too many nodes"), "{e}");
    }

    #[test]
    fn steady_state_rules_are_enforced() {
        // Steady state without a drive source.
        let e = parse("R R1 in gnd 1k\n.sweep amplitudes=1\n.analysis periodic_fd f1=1M\n")
            .unwrap_err();
        assert!(
            e.message.contains("exactly one source marked 'drive'"),
            "{e}"
        );
        // Drive without a steady-state analysis.
        let e = parse("V V1 in gnd drive\n.analysis dcop\n").unwrap_err();
        assert!(
            e.message.contains("requires a steady-state analysis"),
            "{e}"
        );
        // Two-tone without spacings.
        let e =
            parse("V V1 in gnd drive\n.sweep amplitudes=1\n.analysis mpde f1=1M\n").unwrap_err();
        assert!(e.message.contains("spacings"), "{e}");
        // Single-time source under a two-tone analysis.
        let e = parse(
            "V V1 in gnd drive\nV V2 a gnd sine amp=1 freq=1k\n\
             .sweep amplitudes=1 spacings=1k\n.analysis mpde f1=1M\n",
        )
        .unwrap_err();
        assert!(e.message.contains("single-time"), "{e}");
    }

    #[test]
    fn unknown_statements_and_directives_are_refused() {
        assert!(parse("Q Q1 a b c\n.analysis dcop\n").is_err());
        assert!(parse(".fnord\n.analysis dcop\n").is_err());
        assert!(parse("R R1 in gnd 1k\n").is_err()); // missing .analysis
        assert!(parse(".analysis dcop\n").is_err()); // no devices
    }

    #[test]
    fn oversized_inputs_are_refused() {
        let text = "#".repeat(MAX_INPUT_BYTES + 1);
        assert!(parse(&text).is_err());
        let long_line = format!(
            "R R1 in gnd {}\n.analysis dcop\n",
            "1".repeat(MAX_LINE_BYTES)
        );
        assert!(parse(&long_line).is_err());
    }
}
