//! The `.rfn` netlist text format — the front door for user circuits.
//!
//! Every workload the serve tier hosted before this crate was a hard-coded
//! Rust fixture family. `.rfn` is the line-oriented text format that opens
//! that registry: device statements (R/L/C, diodes, the multiplier mixer,
//! controlled sources), node declarations, source/tone specs, and the
//! analysis directives the engines already run (DC operating point,
//! transient, MPDE, two-tone HB, periodic collocation, sweep grids).
//!
//! Three guarantees shape the design:
//!
//! 1. **Dependency-free, hostile-input safe.** The hand-rolled parser
//!    ([`Netlist::parse`]) allocates proportionally to bounded input, caps
//!    every count (lines, devices, nodes, PWL points, sweep values), and
//!    returns a typed [`NetlistError`] with a line number for every
//!    rejection — never a panic. The fuzz harness ([`fuzz`]) hammers
//!    exactly this contract.
//! 2. **Canonical text.** [`Netlist::canonical`] formats the AST into one
//!    normal form such that `parse(canonical(x)) == x` for every valid
//!    netlist. Floats print in Rust's shortest-roundtrip form (the same
//!    convention as the wire protocol's JSON encoder), so canonical text
//!    is a *bit-exact* identity: its FNV-1a hash ([`Netlist::content_hash`])
//!    names the netlist's dynamic serve family
//!    ([`Netlist::family_name`]), and textually different spellings of the
//!    same netlist (comments, whitespace, engineering suffixes, statement
//!    order) memoise together.
//! 3. **Same builders the registry consumes.** [`Netlist::build_circuit`]
//!    produces the identical [`rfsim_circuit::Circuit`] a fixture builder
//!    would, with the `drive`-marked source substituted from a
//!    [`DrivePoint`] operating point — the exact substitution the serve
//!    tier's `PointParams` performs, which is what makes a parsed netlist
//!    a sweepable *family* rather than a single circuit.
//!
//! See `docs/netlist.md` for the statement-by-statement format reference
//! (pinned to this crate by a contract test in both directions).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
pub mod build;
pub mod fmt;
pub mod fuzz;
pub mod parse;

pub use ast::{Analysis, Device, DeviceKind, Netlist, Source, Sweep};
pub use build::DrivePoint;
pub use parse::NetlistError;

/// FNV-1a 64-bit offset basis (matches `rfsim_rf::key::FNV_OFFSET`).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a 64-bit running hash.
#[must_use]
pub fn fnv1a_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}
