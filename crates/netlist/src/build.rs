//! From AST to [`Circuit`]: the bridge the registry consumes.
//!
//! [`Netlist::build_circuit`] replays the device statements through the
//! same [`CircuitBuilder`] the hard-coded fixture families use, so a
//! parsed netlist produces bit-for-bit the circuit a Rust builder would.
//! The `drive`-marked source is substituted from a [`DrivePoint`] — the
//! mirror of the serve tier's `PointParams` drive (a sheared carrier for
//! two-tone backends, a plain sinusoid for periodic collocation) — which
//! is what turns one netlist into a sweepable operating-point *family*.

use std::sync::Arc;

use rfsim_circuit::{
    BiWaveform, Circuit, CircuitBuilder, CircuitError, DiodeParams, Envelope, SourceSpec, Waveform,
};

use crate::ast::{DeviceKind, Netlist, Source};

/// One steady-state operating point: the parameters the serve tier's
/// `PointParams` carries, duplicated here so the netlist crate stays
/// below the serve layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrivePoint {
    /// Drive amplitude.
    pub amplitude: f64,
    /// Carrier frequency `f1` (Hz).
    pub f1: f64,
    /// Tone spacing `fd` (Hz); unused when `two_tone` is false.
    pub spacing: f64,
    /// Whether the backend needs a bivariate (two-tone) drive.
    pub two_tone: bool,
}

impl DrivePoint {
    /// The substituted drive source: a unit-envelope sheared carrier for
    /// two-tone backends, a plain sinusoid otherwise — the exact
    /// substitution `PointParams::source` performs serve-side.
    #[must_use]
    pub fn source_spec(&self) -> SourceSpec {
        if self.two_tone {
            BiWaveform::ShearedCarrier {
                amplitude: self.amplitude,
                k: 1,
                f1: self.f1,
                fd: self.spacing,
                phase: 0.0,
                envelope: Envelope::Unit,
            }
            .into()
        } else {
            Waveform::sine(self.amplitude, self.f1).into()
        }
    }
}

fn source_spec(source: &Source, drive: Option<&DrivePoint>) -> Result<SourceSpec, CircuitError> {
    Ok(match source {
        Source::Dc(v) => Waveform::Dc(*v).into(),
        Source::Sine {
            amplitude,
            freq,
            phase,
            offset,
        } => Waveform::Sine {
            amplitude: *amplitude,
            freq: *freq,
            phase: *phase,
            offset: *offset,
        }
        .into(),
        Source::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => Waveform::Pulse {
            v1: *v1,
            v2: *v2,
            delay: *delay,
            rise: *rise,
            fall: *fall,
            width: *width,
            period: *period,
        }
        .into(),
        Source::Pwl(points) => Waveform::Pwl(Arc::new(points.clone())).into(),
        Source::Tone {
            amplitude,
            k,
            f1,
            fd,
            phase,
            bits,
            edge,
        } => BiWaveform::ShearedCarrier {
            amplitude: *amplitude,
            k: *k,
            f1: *f1,
            fd: *fd,
            phase: *phase,
            envelope: if bits.is_empty() {
                Envelope::Unit
            } else {
                Envelope::bits(bits.clone(), *edge)
            },
        }
        .into(),
        Source::Lo { amplitude, freq } => {
            BiWaveform::Axis1(Waveform::cosine(*amplitude, *freq)).into()
        }
        Source::Drive => match drive {
            Some(point) => point.source_spec(),
            None => {
                return Err(CircuitError::Structural {
                    context: "netlist has a 'drive' source but no operating point was supplied"
                        .into(),
                })
            }
        },
    })
}

impl Netlist {
    /// Builds the circuit, substituting `drive` for the `drive`-marked
    /// source (pass `None` for netlists without one).
    ///
    /// # Errors
    ///
    /// The builder's validation errors (element ranges, duplicate
    /// names), or a structural error when a `drive` source is present
    /// but no operating point was supplied.
    pub fn build_circuit(&self, drive: Option<&DrivePoint>) -> Result<Circuit, CircuitError> {
        let mut b = CircuitBuilder::new();
        for name in &self.nodes {
            b.node(name);
        }
        for device in &self.devices {
            let name = device.name.as_str();
            match &device.kind {
                DeviceKind::Resistor { a, b: n2, ohms } => {
                    let (a, n2) = (b.node(a), b.node(n2));
                    b.resistor(name, a, n2, *ohms)?;
                }
                DeviceKind::Capacitor { a, b: n2, farads } => {
                    let (a, n2) = (b.node(a), b.node(n2));
                    b.capacitor(name, a, n2, *farads)?;
                }
                DeviceKind::Inductor { a, b: n2, henries } => {
                    let (a, n2) = (b.node(a), b.node(n2));
                    b.inductor(name, a, n2, *henries)?;
                }
                DeviceKind::Diode {
                    anode,
                    cathode,
                    is,
                    n,
                    cj0,
                    tt,
                } => {
                    let (anode, cathode) = (b.node(anode), b.node(cathode));
                    b.diode(
                        name,
                        anode,
                        cathode,
                        DiodeParams {
                            is: *is,
                            n: *n,
                            cj0: *cj0,
                            tt: *tt,
                            ..DiodeParams::default()
                        },
                    )?;
                }
                DeviceKind::VSource { p, n, source } => {
                    let spec = source_spec(source, drive)?;
                    let (p, n) = (b.node(p), b.node(n));
                    b.vsource(name, p, n, spec)?;
                }
                DeviceKind::ISource { p, n, source } => {
                    let spec = source_spec(source, drive)?;
                    let (p, n) = (b.node(p), b.node(n));
                    b.isource(name, p, n, spec)?;
                }
                DeviceKind::Multiplier {
                    p,
                    n,
                    xp,
                    xn,
                    yp,
                    yn,
                    gain,
                } => {
                    let (p, n) = (b.node(p), b.node(n));
                    let (xp, xn) = (b.node(xp), b.node(xn));
                    let (yp, yn) = (b.node(yp), b.node(yn));
                    b.multiplier(name, p, n, xp, xn, yp, yn, *gain)?;
                }
                DeviceKind::Vccs { p, n, cp, cn, gm } => {
                    let (p, n) = (b.node(p), b.node(n));
                    let (cp, cn) = (b.node(cp), b.node(cn));
                    b.vccs(name, p, n, cp, cn, *gm)?;
                }
                DeviceKind::Vcvs { p, n, cp, cn, gain } => {
                    let (p, n) = (b.node(p), b.node(n));
                    let (cp, cn) = (b.node(cp), b.node(cn));
                    b.vcvs(name, p, n, cp, cn, *gain)?;
                }
            }
        }
        b.build()
    }

    /// The out-node's unknown index in `circuit`, resolved via
    /// [`Netlist::out_node`] (`None` when the netlist has no non-ground
    /// nodes or the out node carries no unknown).
    #[must_use]
    pub fn out_unknown(&self, circuit: &Circuit) -> Option<usize> {
        let name = self.out_node()?;
        circuit
            .node_by_name(&name)
            .and_then(|node| circuit.unknown_index_of_node(node))
    }
}
