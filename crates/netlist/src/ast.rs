//! The `.rfn` abstract syntax tree.
//!
//! The AST stores *resolved* values: every optional parameter a statement
//! may omit is filled with its documented default during parsing, so two
//! netlists are equal iff they describe the same simulation — and the
//! canonical formatter can print every parameter explicitly without
//! changing meaning. `parse(canonical(x)) == x` follows directly.

use crate::parse::NetlistError;
use crate::{fnv1a_bytes, FNV_OFFSET};

/// A parsed `.rfn` netlist: declarations, devices, and the one analysis
/// directive that says what to do with them.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// Free-text title (`.title`), if any.
    pub title: Option<String>,
    /// Nodes pre-declared with `.node`, in declaration order. Declaring
    /// nodes is optional — device statements create nodes on first use —
    /// but pins the MNA unknown ordering explicitly.
    pub nodes: Vec<String>,
    /// Device statements in source order.
    pub devices: Vec<Device>,
    /// Operating-point grid for steady-state analyses (`.sweep`).
    pub sweep: Option<Sweep>,
    /// The requested analysis (`.analysis`, exactly one).
    pub analysis: Analysis,
}

/// One named device statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Unique device name.
    pub name: String,
    /// The device body.
    pub kind: DeviceKind,
}

/// Device statement bodies. Node fields hold node *names*; `"0"` and
/// `"gnd"` both denote ground.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceKind {
    /// `R name a b ohms`
    Resistor {
        /// First terminal.
        a: String,
        /// Second terminal.
        b: String,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// `C name a b farads`
    Capacitor {
        /// First terminal.
        a: String,
        /// Second terminal.
        b: String,
        /// Capacitance in farads.
        farads: f64,
    },
    /// `L name a b henries`
    Inductor {
        /// First terminal.
        a: String,
        /// Second terminal.
        b: String,
        /// Inductance in henries.
        henries: f64,
    },
    /// `D name anode cathode [is=] [n=] [cj0=] [tt=]`
    Diode {
        /// Anode terminal.
        anode: String,
        /// Cathode terminal.
        cathode: String,
        /// Saturation current `Is` (amperes).
        is: f64,
        /// Emission coefficient `n`.
        n: f64,
        /// Zero-bias junction capacitance (farads).
        cj0: f64,
        /// Transit time (seconds).
        tt: f64,
    },
    /// `V name p n <source>` — independent voltage source.
    VSource {
        /// Positive terminal.
        p: String,
        /// Negative terminal.
        n: String,
        /// Time behaviour.
        source: Source,
    },
    /// `I name p n <source>` — independent current source.
    ISource {
        /// Positive terminal.
        p: String,
        /// Negative terminal.
        n: String,
        /// Time behaviour.
        source: Source,
    },
    /// `MUL name p n xp xn yp yn gain` — the analog multiplier the mixer
    /// fixtures model: current `gain·v(x)·v(y)` from `p` to `n`.
    Multiplier {
        /// Output positive terminal.
        p: String,
        /// Output negative terminal.
        n: String,
        /// First input, positive.
        xp: String,
        /// First input, negative.
        xn: String,
        /// Second input, positive.
        yp: String,
        /// Second input, negative.
        yn: String,
        /// Transconductance gain (A/V²).
        gain: f64,
    },
    /// `VCCS name p n cp cn gm` — voltage-controlled current source.
    Vccs {
        /// Output positive terminal.
        p: String,
        /// Output negative terminal.
        n: String,
        /// Controlling positive terminal.
        cp: String,
        /// Controlling negative terminal.
        cn: String,
        /// Transconductance (siemens).
        gm: f64,
    },
    /// `VCVS name p n cp cn gain` — voltage-controlled voltage source.
    Vcvs {
        /// Output positive terminal.
        p: String,
        /// Output negative terminal.
        n: String,
        /// Controlling positive terminal.
        cp: String,
        /// Controlling negative terminal.
        cn: String,
        /// Voltage gain.
        gain: f64,
    },
}

impl DeviceKind {
    /// The statement keyword this body prints under.
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            DeviceKind::Resistor { .. } => "R",
            DeviceKind::Capacitor { .. } => "C",
            DeviceKind::Inductor { .. } => "L",
            DeviceKind::Diode { .. } => "D",
            DeviceKind::VSource { .. } => "V",
            DeviceKind::ISource { .. } => "I",
            DeviceKind::Multiplier { .. } => "MUL",
            DeviceKind::Vccs { .. } => "VCCS",
            DeviceKind::Vcvs { .. } => "VCVS",
        }
    }

    /// Node names this device touches, in statement order.
    #[must_use]
    pub fn terminals(&self) -> Vec<&str> {
        match self {
            DeviceKind::Resistor { a, b, .. }
            | DeviceKind::Capacitor { a, b, .. }
            | DeviceKind::Inductor { a, b, .. } => vec![a, b],
            DeviceKind::Diode { anode, cathode, .. } => vec![anode, cathode],
            DeviceKind::VSource { p, n, .. } | DeviceKind::ISource { p, n, .. } => vec![p, n],
            DeviceKind::Multiplier {
                p,
                n,
                xp,
                xn,
                yp,
                yn,
                ..
            } => vec![p, n, xp, xn, yp, yn],
            DeviceKind::Vccs { p, n, cp, cn, .. } | DeviceKind::Vcvs { p, n, cp, cn, .. } => {
                vec![p, n, cp, cn]
            }
        }
    }

    /// The independent source's time behaviour, if this is a V/I source.
    #[must_use]
    pub fn source(&self) -> Option<&Source> {
        match self {
            DeviceKind::VSource { source, .. } | DeviceKind::ISource { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The time behaviour of an independent source.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// `dc v` — constant.
    Dc(f64),
    /// `sine amp= freq= [phase=0] [offset=0]` — single-time sinusoid
    /// `offset + amp·sin(2π·freq·t + phase)`.
    Sine {
        /// Amplitude (volts or amperes).
        amplitude: f64,
        /// Frequency (Hz).
        freq: f64,
        /// Phase (radians).
        phase: f64,
        /// DC offset.
        offset: f64,
    },
    /// `pulse v1= v2= period= [delay=0] [rise=p/100] [fall=p/100]
    /// [width=p/2]` — periodic trapezoidal pulse.
    Pulse {
        /// Base level.
        v1: f64,
        /// Pulsed level.
        v2: f64,
        /// Delay before the first edge (seconds).
        delay: f64,
        /// Rise time (seconds).
        rise: f64,
        /// Fall time (seconds).
        fall: f64,
        /// High width (seconds).
        width: f64,
        /// Repetition period (seconds).
        period: f64,
    },
    /// `pwl t:v t:v ...` — piecewise-linear breakpoints with
    /// non-decreasing times.
    Pwl(Vec<(f64, f64)>),
    /// `tone amp= f1= fd= [k=1] [phase=0] [bits=] [edge=0.05]` — the
    /// paper's sheared modulated carrier
    /// `amp·cos(2π(k·f1·t1 − fd·t2) + phase)·m(fd·t2)`, the bivariate
    /// source MPDE/HB2 analyses require. `bits` (a 0/1 string) selects a
    /// raised-cosine bit envelope; empty means the unit envelope.
    Tone {
        /// Carrier amplitude.
        amplitude: f64,
        /// Harmonic multiple of the fast tone.
        k: u32,
        /// Fast (LO) frequency `f1` (Hz).
        f1: f64,
        /// Difference frequency `fd` (Hz).
        fd: f64,
        /// Carrier phase (radians).
        phase: f64,
        /// Bit-envelope pattern (empty = unit envelope).
        bits: Vec<bool>,
        /// Raised-cosine edge fraction of one bit (0 when `bits` empty).
        edge: f64,
    },
    /// `lo amp= freq=` — a fast-axis-only cosine `amp·cos(2π·freq·t1)`,
    /// the LO drive of the mixer fixtures.
    Lo {
        /// Amplitude.
        amplitude: f64,
        /// Frequency (Hz).
        freq: f64,
    },
    /// `drive` — the operating-point placeholder. Exactly one `drive`
    /// source makes a steady-state netlist a sweepable *family*: each
    /// sweep point substitutes the serve tier's standard drive (a sheared
    /// carrier for two-tone backends, a sinusoid for periodic
    /// collocation) at that point's amplitude.
    Drive,
}

impl Source {
    /// The source keyword this body prints under.
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            Source::Dc(_) => "dc",
            Source::Sine { .. } => "sine",
            Source::Pulse { .. } => "pulse",
            Source::Pwl(_) => "pwl",
            Source::Tone { .. } => "tone",
            Source::Lo { .. } => "lo",
            Source::Drive => "drive",
        }
    }

    /// Whether MPDE/HB2 analyses can evaluate this source on the
    /// bivariate grid (constant, bivariate, or substituted per point).
    #[must_use]
    pub fn is_bivariate_capable(&self) -> bool {
        matches!(
            self,
            Source::Dc(_) | Source::Tone { .. } | Source::Lo { .. } | Source::Drive
        )
    }
}

/// The requested analysis. All parameters are stored resolved (defaults
/// applied at parse time).
#[derive(Debug, Clone, PartialEq)]
pub enum Analysis {
    /// `.analysis dcop` — DC operating point.
    Dcop,
    /// `.analysis transient tstop= [dt=tstop/200] [out=]` — adaptive
    /// implicit time stepping from the DC operating point.
    Transient {
        /// End time (seconds).
        t_stop: f64,
        /// Initial step size (seconds).
        dt: f64,
        /// Output node (defaults to a node named `out` when present).
        out: Option<String>,
    },
    /// `.analysis mpde f1= [n1=16] [n2=8] [out=]` — the paper's sheared
    /// multi-time PDE method over the `.sweep` grid.
    Mpde {
        /// Fast-axis carrier frequency (Hz).
        f1: f64,
        /// Fast-axis grid points.
        n1: usize,
        /// Slow-axis grid points.
        n2: usize,
        /// Output node.
        out: Option<String>,
    },
    /// `.analysis hb2 f1= [n1=16] [n2=8] [out=]` — two-tone harmonic
    /// balance over the `.sweep` grid.
    Hb2 {
        /// Fast-axis carrier frequency (Hz).
        f1: f64,
        /// Fast-axis grid points.
        n1: usize,
        /// Slow-axis grid points.
        n2: usize,
        /// Output node.
        out: Option<String>,
    },
    /// `.analysis periodic_fd f1= [n1=64] [out=]` — single-tone periodic
    /// collocation over the `.sweep` amplitudes.
    PeriodicFd {
        /// Tone frequency (Hz).
        f1: f64,
        /// Samples over one period.
        n1: usize,
        /// Output node.
        out: Option<String>,
    },
}

impl Analysis {
    /// The analysis keyword (`dcop`, `transient`, `mpde`, `hb2`,
    /// `periodic_fd`).
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            Analysis::Dcop => "dcop",
            Analysis::Transient { .. } => "transient",
            Analysis::Mpde { .. } => "mpde",
            Analysis::Hb2 { .. } => "hb2",
            Analysis::PeriodicFd { .. } => "periodic_fd",
        }
    }

    /// Whether this is a steady-state analysis (drive + sweep semantics).
    #[must_use]
    pub fn is_steady_state(&self) -> bool {
        matches!(
            self,
            Analysis::Mpde { .. } | Analysis::Hb2 { .. } | Analysis::PeriodicFd { .. }
        )
    }

    /// Whether this analysis needs a two-tone (bivariate) drive.
    #[must_use]
    pub fn is_two_tone(&self) -> bool {
        matches!(self, Analysis::Mpde { .. } | Analysis::Hb2 { .. })
    }

    /// The requested output node, if any.
    #[must_use]
    pub fn out(&self) -> Option<&str> {
        match self {
            Analysis::Dcop => None,
            Analysis::Transient { out, .. }
            | Analysis::Mpde { out, .. }
            | Analysis::Hb2 { out, .. }
            | Analysis::PeriodicFd { out, .. } => out.as_deref(),
        }
    }
}

/// The steady-state operating-point grid: amplitudes × tone spacings.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Drive amplitudes traced (warm-start chained within a row).
    pub amplitudes: Vec<f64>,
    /// Tone spacings `fd` (Hz), one row each; empty for single-tone
    /// analyses.
    pub spacings: Vec<f64>,
}

impl Netlist {
    /// Parses `.rfn` text. See [`crate::parse`].
    ///
    /// # Errors
    ///
    /// A [`NetlistError`] naming the offending line and rule.
    pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
        crate::parse::parse(text)
    }

    /// The canonical text form. See [`crate::fmt`].
    #[must_use]
    pub fn canonical(&self) -> String {
        crate::fmt::canonical(self)
    }

    /// FNV-1a 64-bit hash of the canonical text — the identity the serve
    /// tier keys dynamic netlist families on.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        fnv1a_bytes(FNV_OFFSET, self.canonical().as_bytes())
    }

    /// The dynamic serve-family name of this netlist:
    /// `netlist:<16-hex content hash>`.
    #[must_use]
    pub fn family_name(&self) -> String {
        format!("netlist:{:016x}", self.content_hash())
    }

    /// The devices' `drive` sources (well-formed netlists have at most
    /// one; the parser enforces exactly one for steady-state analyses).
    #[must_use]
    pub fn drive_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d.kind.source(), Some(Source::Drive)))
            .count()
    }

    /// Every distinct non-ground node name, in first-appearance order
    /// (declared nodes first, then device terminals).
    #[must_use]
    pub fn node_names(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let declared = self.nodes.iter().map(String::as_str);
        let used = self.devices.iter().flat_map(|d| d.kind.terminals());
        for name in declared.chain(used) {
            if name == "0" || name == "gnd" {
                continue;
            }
            if seen.insert(name.to_string()) {
                out.push(name.to_string());
            }
        }
        out
    }

    /// The node whose waveform the CLI reports: the analysis' `out=`
    /// parameter, else a node literally named `out`, else the first
    /// non-ground node.
    #[must_use]
    pub fn out_node(&self) -> Option<String> {
        if let Some(name) = self.analysis.out() {
            return Some(name.to_string());
        }
        let nodes = self.node_names();
        if nodes.iter().any(|n| n == "out") {
            return Some("out".to_string());
        }
        nodes.first().cloned()
    }
}
