//! Deterministic structured fuzzing helpers.
//!
//! Dependency-free building blocks shared by the proptest round-trip
//! suite and the CI `fuzz-smoke` binary: a seedable xorshift generator,
//! a byte-level mutator for corpus files, and a structured random-netlist
//! generator that exercises every statement kind the parser accepts.
//! Everything here is a pure function of its seed, so a CI failure
//! reproduces locally from the printed seed alone.

use crate::ast::{Analysis, Device, DeviceKind, Netlist, Source, Sweep};

/// A tiny xorshift64* PRNG — deterministic, seedable, dependency-free.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed` (0 is remapped; all seeds valid).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15 | 1,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// Bytes a mutation likes to insert: structure-bearing characters that
/// push the parser into interesting states faster than uniform noise.
const INTERESTING: &[u8] = b"=.,:#*\"\\{}[]() \t\n\r-+eE018kMxnu\x00\xff\xc3\xa9";

/// Applies 1..=`max_edits` random byte edits (replace/insert/delete) to
/// `input`. The result is arbitrary bytes — feed it through
/// `String::from_utf8_lossy` exactly like the wire front-end does.
#[must_use]
pub fn mutate(rng: &mut XorShift64, input: &[u8], max_edits: usize) -> Vec<u8> {
    let mut bytes = input.to_vec();
    let edits = 1 + rng.below(max_edits.max(1));
    for _ in 0..edits {
        let pick = |rng: &mut XorShift64| {
            if rng.chance(0.5) {
                INTERESTING[rng.below(INTERESTING.len())]
            } else {
                (rng.next_u64() & 0xff) as u8
            }
        };
        match rng.below(3) {
            0 if !bytes.is_empty() => {
                let at = rng.below(bytes.len());
                bytes[at] = pick(rng);
            }
            1 => {
                let at = rng.below(bytes.len() + 1);
                let b = pick(rng);
                bytes.insert(at, b);
            }
            _ if !bytes.is_empty() => {
                let at = rng.below(bytes.len());
                bytes.remove(at);
            }
            _ => {}
        }
    }
    bytes
}

fn nice_number(rng: &mut XorShift64) -> f64 {
    // A mix of round magnitudes and raw mantissas: Display round-trips
    // every finite f64, so odd decimals are fair game for the formatter.
    const POOL: [f64; 12] = [
        0.0, 1.0, -1.0, 0.5, 2.5, 1e3, 1e-9, 160e-12, 3.3, -0.25, 7.25e-4, 1e6,
    ];
    if rng.chance(0.7) {
        POOL[rng.below(POOL.len())]
    } else {
        (rng.unit() * 2.0 - 1.0) * 10f64.powi(rng.below(13) as i32 - 6)
    }
}

fn positive_number(rng: &mut XorShift64) -> f64 {
    let x = nice_number(rng).abs();
    if x > 0.0 {
        x
    } else {
        1.0
    }
}

fn node_name(rng: &mut XorShift64, nodes: &[String]) -> String {
    if rng.chance(0.2) {
        "gnd".to_string()
    } else {
        nodes[rng.below(nodes.len())].clone()
    }
}

fn random_source(rng: &mut XorShift64, two_tone: bool) -> Source {
    let choice = rng.below(if two_tone { 3 } else { 5 });
    match (two_tone, choice) {
        (_, 0) => Source::Dc(nice_number(rng)),
        (true, 1) => Source::Tone {
            amplitude: nice_number(rng),
            k: 1 + rng.below(3) as u32,
            f1: positive_number(rng),
            fd: positive_number(rng),
            phase: nice_number(rng),
            bits: if rng.chance(0.4) {
                (0..2 + rng.below(6)).map(|_| rng.chance(0.5)).collect()
            } else {
                Vec::new()
            },
            edge: 0.0,
        },
        (true, _) => Source::Lo {
            amplitude: nice_number(rng),
            freq: positive_number(rng),
        },
        (false, 1) => Source::Sine {
            amplitude: nice_number(rng),
            freq: positive_number(rng),
            phase: nice_number(rng),
            offset: nice_number(rng),
        },
        (false, 2) => {
            let period = positive_number(rng);
            Source::Pulse {
                v1: nice_number(rng),
                v2: nice_number(rng),
                delay: positive_number(rng) * 0.1,
                rise: period / 100.0,
                fall: period / 100.0,
                width: period / 2.0,
                period,
            }
        }
        (false, 3) => {
            let mut t = 0.0;
            let points = (0..2 + rng.below(5))
                .map(|_| {
                    t += positive_number(rng).min(1.0);
                    (t, nice_number(rng))
                })
                .collect();
            Source::Pwl(points)
        }
        _ => Source::Lo {
            amplitude: nice_number(rng),
            freq: positive_number(rng),
        },
    }
}

/// Generates a structurally valid random netlist: every device kind,
/// every source kind, every analysis directive reachable. The result
/// always satisfies the parser's file-level rules, so
/// `parse(canonical(x)) == x` must hold for it.
#[must_use]
pub fn random_netlist(rng: &mut XorShift64) -> Netlist {
    let analysis_pick = rng.below(5);
    let steady = analysis_pick >= 2;
    let two_tone = analysis_pick == 2 || analysis_pick == 3;

    let node_count = 2 + rng.below(4);
    let nodes: Vec<String> = (0..node_count).map(|i| format!("n{i}")).collect();

    let mut devices = Vec::new();
    let mut serial = 0usize;
    let fresh = |prefix: &str, serial: &mut usize| {
        *serial += 1;
        format!("{prefix}{serial}")
    };

    // Steady-state netlists carry exactly one drive source.
    if steady {
        devices.push(Device {
            name: fresh("V", &mut serial),
            kind: DeviceKind::VSource {
                p: nodes[0].clone(),
                n: "gnd".to_string(),
                source: Source::Drive,
            },
        });
    } else {
        devices.push(Device {
            name: fresh("V", &mut serial),
            kind: DeviceKind::VSource {
                p: nodes[0].clone(),
                n: "gnd".to_string(),
                source: random_source(rng, false),
            },
        });
    }

    let extra = 1 + rng.below(5);
    for _ in 0..extra {
        let a = node_name(rng, &nodes);
        let b = node_name(rng, &nodes);
        let kind = match rng.below(8) {
            0 => DeviceKind::Resistor {
                a,
                b,
                ohms: positive_number(rng),
            },
            1 => DeviceKind::Capacitor {
                a,
                b,
                farads: positive_number(rng) * 1e-9,
            },
            2 => DeviceKind::Inductor {
                a,
                b,
                henries: positive_number(rng) * 1e-6,
            },
            3 => DeviceKind::Diode {
                anode: a,
                cathode: b,
                is: 1e-14,
                n: 1.0 + rng.unit(),
                cj0: 0.0,
                tt: 0.0,
            },
            4 => DeviceKind::ISource {
                p: a,
                n: b,
                source: random_source(rng, two_tone),
            },
            5 => DeviceKind::Multiplier {
                p: a,
                n: b,
                xp: node_name(rng, &nodes),
                xn: node_name(rng, &nodes),
                yp: node_name(rng, &nodes),
                yn: node_name(rng, &nodes),
                gain: nice_number(rng),
            },
            6 => DeviceKind::Vccs {
                p: a,
                n: b,
                cp: node_name(rng, &nodes),
                cn: node_name(rng, &nodes),
                gm: nice_number(rng),
            },
            _ => DeviceKind::Vcvs {
                p: a,
                n: b,
                cp: node_name(rng, &nodes),
                cn: node_name(rng, &nodes),
                gain: nice_number(rng),
            },
        };
        devices.push(Device {
            name: fresh("X", &mut serial),
            kind,
        });
    }

    // `out=` must name an existing node; nodes[0] is always used by the
    // first source, whether or not the `.node` declaration is kept.
    let out = if rng.chance(0.5) {
        Some(nodes[0].clone())
    } else {
        None
    };
    let analysis = match analysis_pick {
        0 => Analysis::Dcop,
        1 => {
            let t_stop = positive_number(rng).max(1e-9);
            Analysis::Transient {
                t_stop,
                dt: t_stop / (10.0 + rng.below(190) as f64),
                out,
            }
        }
        2 => Analysis::Mpde {
            f1: positive_number(rng),
            n1: 2 + rng.below(31),
            n2: 2 + rng.below(15),
            out,
        },
        3 => Analysis::Hb2 {
            f1: positive_number(rng),
            n1: 2 + rng.below(31),
            n2: 2 + rng.below(15),
            out,
        },
        _ => Analysis::PeriodicFd {
            f1: positive_number(rng),
            n1: 2 + rng.below(63),
            out,
        },
    };

    let sweep = if steady {
        Some(Sweep {
            amplitudes: (0..1 + rng.below(4))
                .map(|_| positive_number(rng))
                .collect(),
            spacings: if two_tone {
                (0..1 + rng.below(3))
                    .map(|_| positive_number(rng))
                    .collect()
            } else {
                Vec::new()
            },
        })
    } else {
        None
    };

    Netlist {
        title: if rng.chance(0.4) {
            Some(format!("generated case {}", rng.below(1_000_000)))
        } else {
            None
        },
        nodes: if rng.chance(0.5) { nodes } else { Vec::new() },
        devices,
        sweep,
        analysis,
    }
}

/// Generates random token soup from the parser's own vocabulary — valid
/// keywords in invalid arrangements, reaching deeper error paths than
/// byte noise.
#[must_use]
pub fn random_token_soup(rng: &mut XorShift64) -> String {
    const TOKENS: &[&str] = &[
        "R",
        "C",
        "L",
        "D",
        "V",
        "I",
        "MUL",
        "VCCS",
        "VCVS",
        ".title",
        ".node",
        ".sweep",
        ".analysis",
        "dc",
        "sine",
        "pulse",
        "pwl",
        "tone",
        "lo",
        "drive",
        "dcop",
        "transient",
        "mpde",
        "hb2",
        "periodic_fd",
        "amp=1",
        "freq=1k",
        "f1=1e6",
        "fd=",
        "n1=4",
        "n2=-1",
        "tstop=1m",
        "out=out",
        "amplitudes=1,2",
        "spacings=0",
        "bits=1011",
        "edge=2",
        "in",
        "out",
        "gnd",
        "0",
        "1k",
        "1e999",
        "nan",
        "-",
        "=",
        "#",
        ":",
        "0:1",
        "x:y",
        "999999999999999999",
    ];
    let mut text = String::new();
    let lines = rng.below(12);
    for _ in 0..=lines {
        let toks = rng.below(8);
        for _ in 0..=toks {
            text.push_str(TOKENS[rng.below(TOKENS.len())]);
            text.push(if rng.chance(0.9) { ' ' } else { '\t' });
        }
        text.push('\n');
    }
    text
}
