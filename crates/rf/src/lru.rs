//! A small bounded LRU map keyed by [`JobKey`], with per-entry string
//! tags for targeted eviction.
//!
//! Two memo layers share this one implementation — the sweep engine's
//! solution memo ([`crate::sweep::SweepEngine::with_solution_memo`],
//! tagged by memo token) and the `rfsim-serve` solution store (tagged by
//! family name) — so their recency rules cannot drift apart: a hit
//! refreshes recency, an insert at capacity evicts the least-recently-
//! used entry, replacing an existing key never evicts, and tag-targeted
//! eviction drops entries without counting against the capacity-eviction
//! stats.

use std::collections::HashMap;

use crate::key::JobKey;

/// Counters describing a [`TaggedLru`]'s service history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups served from the map.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Values inserted.
    pub insertions: usize,
    /// Entries evicted to make room (LRU; tag-targeted eviction is
    /// reported by [`TaggedLru::evict`]'s return value instead).
    pub evictions: usize,
}

/// One stored value with its eviction tag and recency tick.
#[derive(Debug)]
struct Entry<V> {
    tag: String,
    value: V,
    last_used: u64,
}

/// A bounded LRU map from [`JobKey`] to a clonable value, with string
/// tags for targeted eviction. Capacity `0` means "retain nothing":
/// inserts are dropped, so callers can use `0` as a disabled state.
#[derive(Debug)]
pub struct TaggedLru<V> {
    entries: HashMap<JobKey, Entry<V>>,
    capacity: usize,
    tick: u64,
    stats: LruStats,
}

impl<V: Clone> TaggedLru<V> {
    /// A map retaining at most `capacity` values.
    pub fn new(capacity: usize) -> Self {
        TaggedLru {
            entries: HashMap::new(),
            capacity,
            tick: 0,
            stats: LruStats::default(),
        }
    }

    /// Maximum retained values.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently retained values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Service counters so far.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&mut self, key: JobKey) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching the hit/miss counters or the LRU
    /// order. For opportunistic probes that are re-issued as a counting
    /// [`TaggedLru::get`] when they do not short-circuit — the serve
    /// tier's registry-free submit fast path — so one logical lookup is
    /// never counted twice.
    pub fn peek(&self, key: JobKey) -> Option<V> {
        self.entries.get(&key).map(|e| e.value.clone())
    }

    /// Inserts a value under `key`, evicting the least-recently-used
    /// entry if the map is at capacity (replacing an existing key never
    /// evicts). `tag` marks the entry for targeted eviction. A
    /// zero-capacity map drops the insert.
    pub fn insert(&mut self, key: JobKey, tag: impl Into<String>, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.stats.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                tag: tag.into(),
                value,
                last_used: self.tick,
            },
        );
    }

    /// Removes entries — all of them, or only those stored under `tag` —
    /// returning how many were dropped (not counted in
    /// [`LruStats::evictions`]; callers report targeted eviction their
    /// own way).
    pub fn evict(&mut self, tag: Option<&str>) -> usize {
        let before = self.entries.len();
        match tag {
            None => self.entries.clear(),
            Some(t) => self.entries.retain(|_, e| e.tag != t),
        }
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{JobKeyBuilder, Quantizer};
    use rfsim_numerics::sparse::Triplets;

    fn key(tag: f64) -> JobKey {
        JobKeyBuilder::new(
            Triplets::new(2, 2).pattern_fingerprint(),
            Quantizer::default(),
        )
        .push_f64(tag)
        .finish()
    }

    #[test]
    fn lru_evicts_least_recently_used_at_capacity() {
        let mut lru: TaggedLru<u32> = TaggedLru::new(2);
        lru.insert(key(1.0), "a", 1);
        lru.insert(key(2.0), "a", 2);
        // Touch key 1 so key 2 is the LRU entry.
        assert_eq!(lru.get(key(1.0)), Some(1));
        lru.insert(key(3.0), "a", 3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.stats().evictions, 1);
        assert_eq!(lru.get(key(2.0)), None, "LRU entry must be gone");
        assert_eq!(lru.get(key(1.0)), Some(1));
        assert_eq!(lru.get(key(3.0)), Some(3));
        // Replacing an existing key never evicts.
        lru.insert(key(1.0), "a", 10);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.stats().evictions, 1);
        assert_eq!(lru.get(key(1.0)), Some(10));
    }

    #[test]
    fn tag_eviction_and_zero_capacity() {
        let mut lru: TaggedLru<u32> = TaggedLru::new(8);
        lru.insert(key(1.0), "rc", 1);
        lru.insert(key(2.0), "rc", 2);
        lru.insert(key(3.0), "diode", 3);
        assert_eq!(lru.evict(Some("rc")), 2);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.evict(None), 1);
        assert!(lru.is_empty());
        // Targeted eviction is not an LRU capacity eviction.
        assert_eq!(lru.stats().evictions, 0);
        // Capacity 0 = disabled: inserts are dropped.
        let mut off: TaggedLru<u32> = TaggedLru::new(0);
        off.insert(key(1.0), "a", 1);
        assert!(off.is_empty());
        assert_eq!(off.stats().insertions, 0);
    }
}
