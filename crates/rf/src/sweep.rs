//! Warm-started parameter sweeps and the batched multi-topology
//! [`SweepEngine`].
//!
//! Steady-state solutions vary smoothly with source amplitude, bias and
//! tone spacing, so each sweep point seeds the next solve — the standard
//! way to trace gain-compression curves cheaply. This module scales that
//! idea from one circuit family to *batches* of families with mixed
//! Jacobian structures:
//!
//! * **Fingerprint-keyed workspace cache** — every solver Jacobian pattern
//!   is summarised by a
//!   [`PatternFingerprint`]
//!   (a hash of its CSC structure), and a
//!   [`WorkspaceCache`] pools
//!   [`LinearSolverWorkspace`]s under those keys. A batch of circuits with
//!   mixed topologies routes every solve to a workspace warmed on *its*
//!   structure, so nothing thrashes: each distinct pattern pays for its
//!   RCM ordering, symbolic reach and pivot order exactly once per
//!   concurrent user, however the batch interleaves. Fingerprints are
//!   routing keys only — the workspace itself still verifies every stamp
//!   position and the stored factor pattern, so a hash collision costs a
//!   transparent rebuild, never a wrong solve.
//! * **Warm-start grouping** — jobs whose Jacobians share a fingerprint
//!   form a *topology group*. A group runs in order on one worker: later
//!   jobs check the earlier jobs' workspace back out of the cache
//!   (numeric-only refactorisations from their very first iteration) and,
//!   when [`SweepEngine::chain_topology_groups`] is on (the default), the
//!   first point of each job is seeded from the previous job's
//!   *first-point* solution — the value-matched neighbour. The seed is a
//!   hint, not a contract: a seeded solve that fails to converge is
//!   retried from the job's own initial guess.
//! * **Worker pool** — independent topology groups execute concurrently on
//!   a hand-rolled fixed-thread [`WorkerPool`]: group count bounds useful
//!   width, each busy worker holds at most one checked-out workspace, and
//!   a width-1 pool degenerates to exact sequential execution (which is
//!   how the cross-validation suite proves the engine bit-identical to
//!   per-topology [`amplitude_sweep`] runs). Size it with
//!   [`WorkerPool::from_available_parallelism`] unless you know better.
//!
//! Three steady-state backends ride the same machinery: the sheared-MPDE
//! solver ([`MpdeSweepJob`]), two-tone harmonic balance ([`Hb2SweepJob`])
//! and single-tone periodic collocation ([`PeriodicFdSweepJob`]).
//! Multi-parameter (amplitude × tone-spacing) families run as
//! [`MpdeGridSweep`]s: one warm-start chain per spacing row, rows spread
//! across the pool, all rows sharing cached workspaces because tone
//! spacing changes Jacobian *values*, not structure.
//!
//! # Solution memoisation
//!
//! Warm workspaces make a repeated batch *cheap*; the engine's bounded
//! LRU **solution memo** makes it *near-free*. A job that carries a
//! [`SweepJob::with_memo_token`] identity is keyed by
//! `(backend Jacobian fingerprint, token, quantised backend parameters,
//! quantised swept values)` through [`crate::key::JobKeyBuilder`], and a
//! repeated identical job returns a clone of the stored per-point
//! solutions without running Newton at all. The token exists because a
//! fingerprint covers Jacobian *structure*, not element *values*: two
//! families sharing a topology (a 1 kΩ and a 2 kΩ output stage) would
//! otherwise collide, so only jobs that declare "which circuit this is"
//! participate — untokened jobs always solve. Memo hits are bit-identical
//! to the batch that populated the entry by construction; in the
//! engine's deterministic mode ([`SweepEngine::chain_topology_groups`]
//! off) they are additionally bit-identical to what a fresh re-solve
//! would produce. Hit counters roll up through the workspace cache as
//! [`WorkspaceStats::engine_memo_hits`].

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rfsim_circuit::driver::{NewtonDriver, Rung, RungExec, RungKind};
use rfsim_circuit::fault::SolveFault;
use rfsim_circuit::newton::{
    LinearSolverWorkspace, NewtonOptions, RefactorStrategy, WorkspaceCache, WorkspaceStats,
};
use rfsim_circuit::{Circuit, Result};
use rfsim_hb::hb2::{hb2_jacobian_fingerprint, hb2_solve_budgeted, Hb2Options, Hb2Result};
use rfsim_mpde::solver::{
    mpde_jacobian_fingerprint, solve_mpde_budgeted, InitialGuess, MpdeOptions,
};
use rfsim_mpde::MpdeSolution;
use rfsim_numerics::sparse::PatternFingerprint;
use rfsim_numerics::SolveBudget;
use rfsim_shooting::{
    periodic_fd_jacobian_fingerprint, periodic_fd_pss_budgeted, PeriodicFdOptions, PeriodicFdResult,
};

use crate::key::{fnv1a_bytes, JobKey, JobKeyBuilder, Quantizer, FNV_OFFSET};
use crate::lru::TaggedLru;
use crate::pool::WorkerPool;

/// One point of an amplitude sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept value (e.g. RF amplitude in volts).
    pub value: f64,
    /// The MPDE solution at this point.
    pub solution: MpdeSolution,
}

/// One point of a two-tone harmonic-balance sweep.
#[derive(Debug, Clone)]
pub struct Hb2SweepPoint {
    /// The swept value.
    pub value: f64,
    /// The HB solution at this point.
    pub solution: Hb2Result,
}

/// One point of a periodic-collocation sweep.
#[derive(Debug, Clone)]
pub struct PeriodicFdSweepPoint {
    /// The swept value.
    pub value: f64,
    /// The PSS solution at this point.
    pub solution: PeriodicFdResult,
}

/// A steady-state solver that can participate in warm-started,
/// workspace-cached sweeps. Implementations exist for the sheared MPDE
/// engine ([`MpdeBackend`]), two-tone HB ([`Hb2Backend`]) and periodic
/// collocation ([`PeriodicFdBackend`]).
pub trait SweepBackend {
    /// Steady-state solution produced per sweep point.
    type Solution;

    /// Cache key: fingerprint of the solver's Jacobian structure for
    /// `circuit` under this backend's options.
    ///
    /// # Errors
    ///
    /// Propagates backend system-construction failures (e.g. a source
    /// without a bivariate waveform).
    fn fingerprint(&self, circuit: &Circuit) -> Result<PatternFingerprint>;

    /// Flattened solution length for `circuit` — gates whether a previous
    /// solution can seed the next solve.
    fn dim(&self, circuit: &Circuit) -> usize;

    /// One steady-state solve, warm-started from `guess` when given and
    /// running under `budget` (pass [`SolveBudget::unlimited`] for an
    /// unconstrained solve).
    ///
    /// # Errors
    ///
    /// Propagates solver convergence and structural failures;
    /// [`rfsim_circuit::CircuitError::Interrupted`] when the budget stops
    /// the solve.
    fn solve(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        workspace: &mut LinearSolverWorkspace,
        budget: &SolveBudget,
    ) -> Result<Self::Solution>;

    /// The flattened samples of `solution` (the next point's warm start).
    fn samples<'a>(&self, solution: &'a Self::Solution) -> &'a [f64];

    /// Folds every backend parameter that can change a solution — grid
    /// shape, periods, schemes, Newton configuration — into a solution-memo
    /// key. Together with the Jacobian fingerprint, the job's memo token
    /// and its quantised swept values, this is the engine's identity for
    /// "the same sub-job" (see [`SweepEngine::with_solution_memo`]).
    fn fold_memo_key(&self, key: JobKeyBuilder) -> JobKeyBuilder;
}

/// Folds the solution-relevant [`NewtonOptions`] fields into a memo key.
/// Tolerances and iteration budgets change which bits Newton converges to,
/// so they are all part of the identity — folded by *exact bit pattern*,
/// not through the quantizer: quantisation exists to merge near-identical
/// spellings of physical sweep parameters, but two solver configurations
/// that differ at all may legitimately converge to different bits (and a
/// stricter tolerance must never be served a looser tolerance's
/// solution). The nested linear-solver choice is folded through its
/// (plain-data) `Debug` spelling.
fn fold_newton_options(key: JobKeyBuilder, newton: &NewtonOptions) -> JobKeyBuilder {
    key.push_u64(newton.max_iters as u64)
        .push_u64(newton.reltol.to_bits())
        .push_u64(newton.abstol_v.to_bits())
        .push_u64(newton.abstol_i.to_bits())
        .push_u64(newton.min_damping.to_bits())
        .push_u64(newton.residual_tol.to_bits())
        .push_u64(newton.jacobian_reuse as u64)
        .push_u64(newton.max_voltage_step.to_bits())
        .push_str(&format!("{:?}", newton.linear))
}

/// Folds an [`InitialGuess`] into a memo key. A caller-provided sample
/// guess is folded by exact bit pattern (not quantised): a different guess
/// can converge to different bits, so "close" guesses must not merge.
fn fold_initial_guess(key: JobKeyBuilder, guess: &InitialGuess) -> JobKeyBuilder {
    match guess {
        InitialGuess::DcReplicate => key.push_str("dc"),
        InitialGuess::EnvelopeFollowing { sweeps } => {
            key.push_str("envelope").push_u64(*sweeps as u64)
        }
        InitialGuess::Samples(samples) => {
            let mut h = FNV_OFFSET;
            for &s in samples {
                h = fnv1a_bytes(h, &s.to_bits().to_le_bytes());
            }
            key.push_str("samples")
                .push_u64(samples.len() as u64)
                .push_u64(h)
        }
    }
}

/// Sheared-MPDE sweep backend (the paper's method).
#[derive(Debug, Clone)]
pub struct MpdeBackend {
    t1_period: f64,
    t2_period: f64,
    options: MpdeOptions,
}

impl SweepBackend for MpdeBackend {
    type Solution = MpdeSolution;

    fn fingerprint(&self, circuit: &Circuit) -> Result<PatternFingerprint> {
        mpde_jacobian_fingerprint(circuit, self.t1_period, self.t2_period, &self.options)
    }

    fn dim(&self, circuit: &Circuit) -> usize {
        circuit.num_unknowns() * self.options.n1 * self.options.n2
    }

    fn solve(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        workspace: &mut LinearSolverWorkspace,
        budget: &SolveBudget,
    ) -> Result<MpdeSolution> {
        let mut options = self.options.clone();
        if let Some(g) = guess {
            options.initial_guess = InitialGuess::Samples(g.to_vec());
        }
        solve_mpde_budgeted(
            circuit,
            self.t1_period,
            self.t2_period,
            options,
            workspace,
            budget,
        )
    }

    fn samples<'a>(&self, solution: &'a MpdeSolution) -> &'a [f64] {
        &solution.solution.data
    }

    fn fold_memo_key(&self, key: JobKeyBuilder) -> JobKeyBuilder {
        let o = &self.options;
        let key = key
            .push_str("mpde")
            .push_f64(self.t1_period)
            .push_f64(self.t2_period)
            .push_u64(o.n1 as u64)
            .push_u64(o.n2 as u64)
            .push_str(&format!("{:?}", o.scheme1))
            .push_str(&format!("{:?}", o.scheme2))
            .push_u64(u64::from(o.continuation_fallback))
            .push_str(&format!("{:?}", o.continuation));
        fold_initial_guess(fold_newton_options(key, &o.newton), &o.initial_guess)
    }
}

/// Two-tone harmonic-balance sweep backend.
#[derive(Debug, Clone)]
pub struct Hb2Backend {
    period1: f64,
    period2: f64,
    options: Hb2Options,
}

impl SweepBackend for Hb2Backend {
    type Solution = Hb2Result;

    fn fingerprint(&self, circuit: &Circuit) -> Result<PatternFingerprint> {
        Ok(hb2_jacobian_fingerprint(
            circuit,
            self.period1,
            self.period2,
            &self.options,
        ))
    }

    fn dim(&self, circuit: &Circuit) -> usize {
        // hb2_solve clamps both axes to at least 4 points.
        circuit.num_unknowns() * self.options.n1.max(4) * self.options.n2.max(4)
    }

    fn solve(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        workspace: &mut LinearSolverWorkspace,
        budget: &SolveBudget,
    ) -> Result<Hb2Result> {
        hb2_solve_budgeted(
            circuit,
            self.period1,
            self.period2,
            guess,
            self.options,
            workspace,
            budget,
        )
    }

    fn samples<'a>(&self, solution: &'a Hb2Result) -> &'a [f64] {
        &solution.samples
    }

    fn fold_memo_key(&self, key: JobKeyBuilder) -> JobKeyBuilder {
        let o = &self.options;
        let key = key
            .push_str("hb2")
            .push_f64(self.period1)
            .push_f64(self.period2)
            .push_u64(o.n1 as u64)
            .push_u64(o.n2 as u64);
        fold_newton_options(key, &o.newton)
    }
}

/// Single-tone periodic-collocation sweep backend.
#[derive(Debug, Clone)]
pub struct PeriodicFdBackend {
    period: f64,
    options: PeriodicFdOptions,
}

impl SweepBackend for PeriodicFdBackend {
    type Solution = PeriodicFdResult;

    fn fingerprint(&self, circuit: &Circuit) -> Result<PatternFingerprint> {
        Ok(periodic_fd_jacobian_fingerprint(
            circuit,
            self.period,
            &self.options,
        ))
    }

    fn dim(&self, circuit: &Circuit) -> usize {
        // periodic_fd_pss clamps the sample count to the stencil width.
        circuit.num_unknowns() * self.options.n_samples.max(self.options.scheme.min_points())
    }

    fn solve(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        workspace: &mut LinearSolverWorkspace,
        budget: &SolveBudget,
    ) -> Result<PeriodicFdResult> {
        periodic_fd_pss_budgeted(circuit, self.period, guess, self.options, workspace, budget)
    }

    fn samples<'a>(&self, solution: &'a PeriodicFdResult) -> &'a [f64] {
        &solution.samples
    }

    fn fold_memo_key(&self, key: JobKeyBuilder) -> JobKeyBuilder {
        let o = &self.options;
        let key = key
            .push_str("periodic_fd")
            .push_f64(self.period)
            .push_u64(o.n_samples as u64)
            .push_str(&format!("{:?}", o.scheme));
        fold_newton_options(key, &o.newton)
    }
}

/// A circuit family: the swept value in, the circuit at that operating
/// point out.
pub type CircuitFamily = Box<dyn Fn(f64) -> Result<Circuit> + Send + Sync>;

/// Per-job outcome of a generic batch: the traced `(value, solution)`
/// pairs, or the first error the job hit.
pub type SweepResult<S> = Result<Vec<(f64, S)>>;

/// One sweep job: a circuit family, the values to trace, and the backend
/// configuration to solve each point with.
pub struct SweepJob<B> {
    /// Diagnostic name carried through to results and logs.
    pub label: String,
    /// Swept values, traced in order with warm-start chaining.
    pub values: Vec<f64>,
    /// Backend configuration shared by all points.
    pub backend: B,
    make_circuit: CircuitFamily,
    memo_token: Option<String>,
    budget: Option<SolveBudget>,
    fault: Option<SolveFault>,
}

impl<B> std::fmt::Debug for SweepJob<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob")
            .field("label", &self.label)
            .field("points", &self.values.len())
            .field("memo_token", &self.memo_token)
            .field("budget", &self.budget)
            .field("fault", &self.fault)
            .finish()
    }
}

impl<B> SweepJob<B> {
    /// Opts this job into the engine's solution memo under `token` — the
    /// caller's name for *which circuit family* `make_circuit` builds
    /// (e.g. `"rc_lowpass/1k"`). The engine's fingerprint covers Jacobian
    /// structure but not element values, so the token is the part of the
    /// memo identity only the caller knows: two jobs may share a token
    /// **iff** they build value-identical circuits for equal swept values.
    /// Jobs without a token never consult the memo.
    #[must_use]
    pub fn with_memo_token(mut self, token: impl Into<String>) -> Self {
        self.memo_token = Some(token.into());
        self
    }

    /// The memo identity set by [`SweepJob::with_memo_token`], if any.
    pub fn memo_token(&self) -> Option<&str> {
        self.memo_token.as_deref()
    }

    /// Runs this job under its own [`SolveBudget`] instead of the batch
    /// budget. The budget covers every point of the sweep: the chain
    /// fail-fasts between points and every Newton/Krylov iteration inside
    /// a point polls it, so a cancel or an expired deadline surfaces as
    /// [`rfsim_circuit::CircuitError::Interrupted`] in this job's result
    /// slot without touching its batch neighbours.
    #[must_use]
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The per-job budget set by [`SweepJob::with_budget`], if any.
    pub fn budget(&self) -> Option<&SolveBudget> {
        self.budget.as_ref()
    }

    /// Injects a deterministic [`SolveFault`] ahead of every point's solve
    /// — test/drill instrumentation for the control plane (see
    /// [`rfsim_circuit::fault`]). A faulted job only ever fails or hangs
    /// *itself*; it cannot corrupt results.
    #[must_use]
    pub fn with_fault(mut self, fault: SolveFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The injected fault set by [`SweepJob::with_fault`], if any.
    pub fn fault(&self) -> Option<&SolveFault> {
        self.fault.as_ref()
    }
}

/// An MPDE amplitude-sweep job for [`SweepEngine::run_mpde_batch`].
pub type MpdeSweepJob = SweepJob<MpdeBackend>;

/// A two-tone HB sweep job for [`SweepEngine::run_hb2_batch`].
pub type Hb2SweepJob = SweepJob<Hb2Backend>;

/// A periodic-collocation sweep job for
/// [`SweepEngine::run_periodic_fd_batch`].
pub type PeriodicFdSweepJob = SweepJob<PeriodicFdBackend>;

impl SweepJob<MpdeBackend> {
    /// An MPDE sweep of `values` over the family `make_circuit`, solving
    /// each point on the `[0, t1_period) × [0, t2_period)` grid.
    pub fn new(
        label: impl Into<String>,
        values: Vec<f64>,
        t1_period: f64,
        t2_period: f64,
        options: MpdeOptions,
        make_circuit: impl Fn(f64) -> Result<Circuit> + Send + Sync + 'static,
    ) -> Self {
        SweepJob {
            label: label.into(),
            values,
            backend: MpdeBackend {
                t1_period,
                t2_period,
                options,
            },
            make_circuit: Box::new(make_circuit),
            memo_token: None,
            budget: None,
            fault: None,
        }
    }
}

impl SweepJob<Hb2Backend> {
    /// A two-tone HB sweep of `values` over the family `make_circuit`.
    pub fn new(
        label: impl Into<String>,
        values: Vec<f64>,
        period1: f64,
        period2: f64,
        options: Hb2Options,
        make_circuit: impl Fn(f64) -> Result<Circuit> + Send + Sync + 'static,
    ) -> Self {
        SweepJob {
            label: label.into(),
            values,
            backend: Hb2Backend {
                period1,
                period2,
                options,
            },
            make_circuit: Box::new(make_circuit),
            memo_token: None,
            budget: None,
            fault: None,
        }
    }
}

impl SweepJob<PeriodicFdBackend> {
    /// A periodic-collocation sweep of `values` over the family
    /// `make_circuit`, solving each point over one `period`.
    pub fn new(
        label: impl Into<String>,
        values: Vec<f64>,
        period: f64,
        options: PeriodicFdOptions,
        make_circuit: impl Fn(f64) -> Result<Circuit> + Send + Sync + 'static,
    ) -> Self {
        SweepJob {
            label: label.into(),
            values,
            backend: PeriodicFdBackend { period, options },
            make_circuit: Box::new(make_circuit),
            memo_token: None,
            budget: None,
            fault: None,
        }
    }
}

/// An amplitude × tone-spacing MPDE grid for [`SweepEngine::run_mpde_grid`].
///
/// Each spacing `fd` defines one row solved on the
/// `[0, t1_period) × [0, 1/fd)` grid; rows are independent warm-start
/// chains spread across the pool, and — because tone spacing changes
/// Jacobian *values*, not structure — every row draws on the same
/// fingerprint-keyed workspaces.
pub struct MpdeGridSweep {
    /// Diagnostic name.
    pub label: String,
    /// Amplitudes traced (warm-start chained) within each row.
    pub amplitudes: Vec<f64>,
    /// Tone spacings `fd` in hertz, one row each.
    pub spacings: Vec<f64>,
    /// Fast-axis period shared by all rows.
    pub t1_period: f64,
    /// MPDE options shared by all points.
    pub options: MpdeOptions,
    make_circuit: Box<dyn Fn(f64, f64) -> Result<Circuit> + Send + Sync>,
    memo_token: Option<String>,
}

impl MpdeGridSweep {
    /// A grid over `amplitudes × spacings`; `make_circuit(amplitude, fd)`
    /// builds the circuit at one grid point.
    pub fn new(
        label: impl Into<String>,
        amplitudes: Vec<f64>,
        spacings: Vec<f64>,
        t1_period: f64,
        options: MpdeOptions,
        make_circuit: impl Fn(f64, f64) -> Result<Circuit> + Send + Sync + 'static,
    ) -> Self {
        MpdeGridSweep {
            label: label.into(),
            amplitudes,
            spacings,
            t1_period,
            options,
            make_circuit: Box::new(make_circuit),
            memo_token: None,
        }
    }

    /// Opts this grid into the engine's solution memo under `token` — one
    /// token covers the whole grid, because each row's memo key also folds
    /// in the row's `t2_period = 1/fd`, which distinguishes rows of the
    /// same family. The same sharing contract as
    /// [`SweepJob::with_memo_token`] applies: two grids may share a token
    /// **iff** `make_circuit` builds value-identical circuits for equal
    /// `(amplitude, fd)` coordinates.
    #[must_use]
    pub fn with_memo_token(mut self, token: impl Into<String>) -> Self {
        self.memo_token = Some(token.into());
        self
    }

    /// The memo identity set by [`MpdeGridSweep::with_memo_token`], if any.
    pub fn memo_token(&self) -> Option<&str> {
        self.memo_token.as_deref()
    }
}

impl std::fmt::Debug for MpdeGridSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpdeGridSweep")
            .field("label", &self.label)
            .field("amplitudes", &self.amplitudes.len())
            .field("spacings", &self.spacings.len())
            .field("memo_token", &self.memo_token)
            .finish()
    }
}

/// One solved point of an [`MpdeGridSweep`].
#[derive(Debug, Clone)]
pub struct MpdeGridPoint {
    /// The amplitude coordinate.
    pub amplitude: f64,
    /// The tone-spacing coordinate (hertz).
    pub spacing: f64,
    /// The MPDE solution at this grid point.
    pub solution: MpdeSolution,
}

/// The engine's bounded LRU solution memo (see the module docs): job key
/// in, a clone of the stored per-point solutions — behind a type-erased
/// [`Arc`], so one map serves every backend — out. The recency and
/// eviction rules are the shared [`TaggedLru`]'s, the same ones the
/// serve layer's solution store runs on; entries are tagged with the
/// job's memo token for targeted eviction.
struct SolutionMemo {
    entries: TaggedLru<Arc<dyn Any + Send + Sync>>,
}

impl SolutionMemo {
    fn new(capacity: usize) -> Self {
        SolutionMemo {
            entries: TaggedLru::new(capacity),
        }
    }

    fn enabled(&self) -> bool {
        self.entries.capacity() > 0
    }

    fn get(&mut self, key: JobKey) -> Option<Arc<dyn Any + Send + Sync>> {
        self.entries.get(key)
    }

    fn insert(&mut self, key: JobKey, token: String, value: Arc<dyn Any + Send + Sync>) {
        self.entries.insert(key, token, value);
    }

    fn evict(&mut self, token: Option<&str>) -> usize {
        self.entries.evict(token)
    }

    fn snapshot(&self) -> MemoSnapshot {
        let stats = self.entries.stats();
        MemoSnapshot {
            hits: stats.hits,
            misses: stats.misses,
            insertions: stats.insertions,
            evictions: stats.evictions,
            len: self.entries.len(),
            capacity: self.entries.capacity(),
        }
    }
}

/// Snapshot of the engine's solution-memo counters
/// ([`SweepEngine::memo_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoSnapshot {
    /// Memo-eligible sub-jobs served without a solve.
    pub hits: usize,
    /// Memo-eligible sub-jobs that paid a full sweep.
    pub misses: usize,
    /// Solutions stored.
    pub insertions: usize,
    /// Entries dropped to respect the capacity bound (LRU).
    pub evictions: usize,
    /// Entries currently retained.
    pub len: usize,
    /// Retention bound (0 = memo disabled).
    pub capacity: usize,
}

/// Snapshot of the engine's workspace-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Checkouts served by a workspace warmed on the right structure.
    pub hits: usize,
    /// Checkouts that created a fresh workspace.
    pub misses: usize,
    /// Workspaces currently parked in the pool.
    pub parked: usize,
    /// Distinct sparsity fingerprints with parked workspaces.
    pub patterns: usize,
}

/// Batched multi-topology sweep engine: a fingerprint-keyed workspace
/// cache, warm-start chaining per topology group, and a fixed-thread
/// worker pool executing independent groups concurrently.
///
/// The engine is long-lived by design — its cache is its value. A sweep
/// service keeps one engine and feeds it batches; every structure the
/// engine has seen before starts with numeric-only refactorisations.
///
/// ```
/// use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, GROUND};
/// use rfsim_mpde::solver::MpdeOptions;
/// use rfsim_rf::pool::WorkerPool;
/// use rfsim_rf::sweep::{MpdeSweepJob, SweepEngine};
///
/// # fn main() -> Result<(), rfsim_circuit::CircuitError> {
/// let (f1, fd) = (1e6, 10e3);
/// // A family of RC output stages, parameterised by load resistance.
/// let family = move |r_load: f64| {
///     move |amplitude: f64| {
///         let mut b = CircuitBuilder::new();
///         let inp = b.node("in");
///         let out = b.node("out");
///         b.vsource(
///             "VRF",
///             inp,
///             GROUND,
///             BiWaveform::ShearedCarrier {
///                 amplitude,
///                 k: 1,
///                 f1,
///                 fd,
///                 phase: 0.0,
///                 envelope: Envelope::Unit,
///             },
///         )?;
///         b.resistor("R1", inp, out, r_load)?;
///         b.capacitor("C1", out, GROUND, 160e-12)?;
///         b.build()
///     }
/// };
/// let opts = MpdeOptions {
///     n1: 8,
///     n2: 4,
///     ..Default::default()
/// };
/// let jobs = vec![
///     MpdeSweepJob::new("load-1k", vec![0.1, 0.2], 1.0 / f1, 1.0 / fd,
///                       opts.clone(), family(1e3)),
///     MpdeSweepJob::new("load-2k", vec![0.1, 0.2], 1.0 / f1, 1.0 / fd,
///                       opts, family(2e3)),
/// ];
/// let engine = SweepEngine::with_pool(WorkerPool::new(2));
/// for result in engine.run_mpde_batch(&jobs) {
///     assert_eq!(result.expect("sweep converges").len(), 2);
/// }
/// // Both families share one topology, so they formed one group and the
/// // second job rode the first one's warmed workspace.
/// assert_eq!(engine.cache_stats().patterns, 1);
/// # Ok(())
/// # }
/// ```
pub struct SweepEngine {
    pool: WorkerPool,
    cache: Mutex<WorkspaceCache>,
    memo: Mutex<SolutionMemo>,
    /// Backend Jacobian fingerprints per
    /// `(backend type ⊕ DC pattern, solution dim)` probe, persisted across
    /// batches: a repeated batch pays two cheap circuit-level probes per
    /// job instead of re-assembling the backend's grid Jacobian structure.
    /// Fingerprints are routing keys (see `run_batch`), so a probe merge
    /// costs a transparent workspace rebuild, never a wrong solve — and
    /// solution-memo keys fold the backend parameters and token
    /// separately, so a merge can never manufacture a false memo hit.
    probe_cache: Mutex<HashMap<(u64, usize), PatternFingerprint>>,
    quantizer: Quantizer,
    chain_groups: bool,
    refactor_strategy: RefactorStrategy,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine sized to the machine
    /// ([`WorkerPool::from_available_parallelism`]).
    pub fn new() -> Self {
        Self::with_pool(WorkerPool::from_available_parallelism())
    }

    /// Default bound on memoised sub-job solutions: matched to the
    /// workspace cache's topology bound — enough for a dashboard's worth
    /// of repeated grids while capping retained sample memory.
    pub const DEFAULT_MEMO_CAPACITY: usize = 64;

    /// Bound on persisted backend-fingerprint probes (distinct
    /// `(backend, DC structure, dim)` triples the engine has seen).
    const PROBE_CACHE_CAPACITY: usize = 1024;

    /// An engine running on an explicit pool.
    pub fn with_pool(pool: WorkerPool) -> Self {
        SweepEngine {
            pool,
            cache: Mutex::new(WorkspaceCache::new()),
            memo: Mutex::new(SolutionMemo::new(Self::DEFAULT_MEMO_CAPACITY)),
            probe_cache: Mutex::new(HashMap::new()),
            quantizer: Quantizer::default(),
            chain_groups: true,
            refactor_strategy: RefactorStrategy::Sequential,
        }
    }

    /// Bounds the number of warmed workspaces the engine parks between
    /// batches (default [`WorkspaceCache::DEFAULT_CAPACITY`]). Long-lived
    /// services hosting many distinct topologies use this to cap factor
    /// retention; a check-in beyond the bound drops the workspace, never a
    /// result. A construction-time builder: it replaces the cache, so call
    /// it before the first batch.
    #[must_use]
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        *self.cache.lock().expect("workspace cache poisoned") =
            WorkspaceCache::with_capacity(capacity);
        self
    }

    /// Bounds the engine's solution memo to `capacity` memoised sub-jobs
    /// (default [`SweepEngine::DEFAULT_MEMO_CAPACITY`]; `0` disables the
    /// memo entirely). Only jobs carrying a
    /// [`SweepJob::with_memo_token`] identity participate; see the module
    /// docs for the keying rules. A construction-time builder: it
    /// replaces the memo, so call it before the first batch.
    ///
    /// A second identical batch is served from the memo — no Newton
    /// iterations, bit-identical points:
    ///
    /// ```
    /// use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, GROUND};
    /// use rfsim_mpde::solver::MpdeOptions;
    /// use rfsim_rf::pool::WorkerPool;
    /// use rfsim_rf::sweep::{MpdeSweepJob, SweepEngine};
    ///
    /// # fn main() -> Result<(), rfsim_circuit::CircuitError> {
    /// let (f1, fd) = (1e6, 10e3);
    /// let family = move |amplitude: f64| {
    ///     let mut b = CircuitBuilder::new();
    ///     let inp = b.node("in");
    ///     let out = b.node("out");
    ///     b.vsource(
    ///         "VRF",
    ///         inp,
    ///         GROUND,
    ///         BiWaveform::ShearedCarrier {
    ///             amplitude,
    ///             k: 1,
    ///             f1,
    ///             fd,
    ///             phase: 0.0,
    ///             envelope: Envelope::Unit,
    ///         },
    ///     )?;
    ///     b.resistor("R1", inp, out, 1e3)?;
    ///     b.capacitor("C1", out, GROUND, 160e-12)?;
    ///     b.build()
    /// };
    /// let opts = MpdeOptions {
    ///     n1: 8,
    ///     n2: 4,
    ///     ..Default::default()
    /// };
    /// let jobs = vec![
    ///     MpdeSweepJob::new("rc-1k", vec![0.1, 0.2], 1.0 / f1, 1.0 / fd, opts, family)
    ///         .with_memo_token("rc_lowpass/1k"),
    /// ];
    /// let engine = SweepEngine::with_pool(WorkerPool::new(1)).with_solution_memo(16);
    /// let first = engine.run_mpde_batch(&jobs);
    /// let again = engine.run_mpde_batch(&jobs);
    /// // The repeat was a memo hit, and its points are bit-identical.
    /// assert!(engine.memo_stats().hits > 0);
    /// assert_eq!(engine.solver_stats().engine_memo_hits, 1);
    /// let (a, b) = (first[0].as_ref().unwrap(), again[0].as_ref().unwrap());
    /// for (pa, pb) in a.iter().zip(b) {
    ///     assert_eq!(pa.solution.solution.data, pb.solution.solution.data);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn with_solution_memo(self, capacity: usize) -> Self {
        *self.memo.lock().expect("solution memo poisoned") = SolutionMemo::new(capacity);
        self
    }

    /// Sets the quantiser used for solution-memo keys (default
    /// [`Quantizer::default`]: 12 significant digits). Coarser quantisation
    /// merges more near-identical requests onto one memo entry; see
    /// [`crate::key`] for the bucketing rules.
    #[must_use]
    pub fn with_quantizer(mut self, quantizer: Quantizer) -> Self {
        self.quantizer = quantizer;
        self
    }

    /// Sets the numeric-refactorisation strategy applied to every
    /// workspace this engine checks out (default:
    /// [`RefactorStrategy::Sequential`]).
    ///
    /// [`RefactorStrategy::Parallel`] pipelines the per-column refresh of
    /// each large grid Jacobian across a pool — *intra-solve* parallelism,
    /// complementary to the engine's own *inter-group* pool. Use it when
    /// batches carry few topology groups but big systems; with many
    /// concurrent groups, remember each group multiplies the strategy
    /// pool's width.
    #[must_use]
    pub fn with_refactor_strategy(mut self, strategy: RefactorStrategy) -> Self {
        self.refactor_strategy = strategy;
        self
    }

    /// Enables or disables all cross-job reuse inside a topology group (on
    /// by default). When disabled, every job solves on its own private
    /// workspace with no solution seeding — numerically independent of its
    /// group neighbours and therefore bit-identical to running it alone
    /// through [`amplitude_sweep`] on a cold engine. Use it to validate
    /// the fast path, or whenever bit-reproducibility outranks throughput;
    /// grouping and pool scheduling still apply.
    #[must_use]
    pub fn chain_topology_groups(mut self, chain: bool) -> Self {
        self.chain_groups = chain;
        self
    }

    /// The worker pool this engine schedules groups onto.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Current workspace-cache counters.
    pub fn cache_stats(&self) -> CacheSnapshot {
        let cache = self.cache.lock().expect("workspace cache poisoned");
        CacheSnapshot {
            hits: cache.hits,
            misses: cache.misses,
            parked: cache.len(),
            patterns: cache.num_patterns(),
        }
    }

    /// Aggregated linear-solver counters across every workspace the
    /// engine's cache has seen — refactorisations vs full factorisations,
    /// restricted-pivoting exchanges vs full fallbacks, preconditioner
    /// refreshes vs rebuilds. Take the snapshot between batches:
    /// checked-out workspaces report when they park.
    pub fn solver_stats(&self) -> WorkspaceStats {
        self.cache
            .lock()
            .expect("workspace cache poisoned")
            .solver_stats()
    }

    /// Drops every parked workspace (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("workspace cache poisoned").clear();
    }

    /// Current solution-memo counters.
    pub fn memo_stats(&self) -> MemoSnapshot {
        self.memo.lock().expect("solution memo poisoned").snapshot()
    }

    /// Drops memoised solutions — all of them, or only those stored under
    /// `token` — returning how many were dropped. Callers whose circuit
    /// families change *values* without changing structure (a retuned
    /// resistor behind the same token) must evict that token before the
    /// next batch, exactly like the serve layer's per-family eviction.
    pub fn evict_memo(&self, token: Option<&str>) -> usize {
        self.memo
            .lock()
            .expect("solution memo poisoned")
            .evict(token)
    }

    /// Folds one memo lookup outcome into the workspace cache's counter
    /// history, so [`SweepEngine::solver_stats`] (and everything stacked
    /// on it, like `ServeStats`) reports memo reuse alongside the other
    /// reuse counters.
    fn record_memo_event(&self, hit: bool) {
        let delta = WorkspaceStats {
            engine_memo_hits: usize::from(hit),
            engine_memo_misses: usize::from(!hit),
            ..Default::default()
        };
        self.cache
            .lock()
            .expect("workspace cache poisoned")
            .absorb_stats(&delta);
    }

    /// Runs a batch of sweep jobs over any backend: probes each job's
    /// Jacobian fingerprint, groups jobs by structure, executes the groups
    /// concurrently on the pool, and returns per-job results in input
    /// order. A job that fails leaves the other jobs untouched — its slot
    /// carries the error.
    pub fn run_batch<B>(&self, jobs: &[SweepJob<B>]) -> Vec<SweepResult<B::Solution>>
    where
        B: SweepBackend + Sync,
        B::Solution: Clone + Send + Sync + 'static,
    {
        self.run_batch_with_budget(jobs, &SolveBudget::unlimited())
    }

    /// [`SweepEngine::run_batch`] under a batch-wide [`SolveBudget`]. The
    /// budget fans out to a [`SolveBudget::child`] per sub-job, so one
    /// batch cancel (or deadline) stops every worker promptly: each job
    /// slot whose solve was cut short carries
    /// [`rfsim_circuit::CircuitError::Interrupted`], while already-settled
    /// slots keep their results. A job with its own
    /// [`SweepJob::with_budget`] runs under that budget instead.
    pub fn run_batch_with_budget<B>(
        &self,
        jobs: &[SweepJob<B>],
        budget: &SolveBudget,
    ) -> Vec<SweepResult<B::Solution>>
    where
        B: SweepBackend + Sync,
        B::Solution: Clone + Send + Sync + 'static,
    {
        // Probe fingerprints in parallel: one circuit build per job, but —
        // since same-topology batches are the engine's bread and butter —
        // the expensive backend Jacobian-structure assembly is memoised by
        // the cheap (backend type ⊕ DC pattern, solution dim) probe, so N
        // same-structure jobs pay for one, and — because the probe cache
        // persists on the engine — a *repeated* batch pays for none. The
        // memo can only merge jobs whose backends differ in ways invisible
        // to that probe (e.g. a different stencil on an identical grid);
        // grouping is a routing choice, so the cost of such a merge is a
        // transparent workspace rebuild, never a wrong solve.
        let backend_tag = fnv1a_bytes(FNV_OFFSET, std::any::type_name::<B>().as_bytes());
        let probes = self.pool.run(jobs.len(), |j| {
            let job = &jobs[j];
            job.values.first().map(|&v| {
                (job.make_circuit)(v).and_then(|circuit| {
                    let dc = circuit.jacobian_fingerprint();
                    let probe = (
                        fnv1a_bytes(backend_tag, &dc.as_u64().to_le_bytes()),
                        job.backend.dim(&circuit),
                    );
                    let memoised = self
                        .probe_cache
                        .lock()
                        .expect("probe cache poisoned")
                        .get(&probe)
                        .copied();
                    if let Some(key) = memoised {
                        return Ok(key);
                    }
                    let key = job.backend.fingerprint(&circuit)?;
                    let mut cache = self.probe_cache.lock().expect("probe cache poisoned");
                    if cache.len() >= Self::PROBE_CACHE_CAPACITY {
                        // Probes are one structure assembly away; overflow
                        // handling can be blunt.
                        cache.clear();
                    }
                    cache.insert(probe, key);
                    Ok(key)
                })
            })
        });

        let mut results: Vec<Option<SweepResult<B::Solution>>> =
            (0..jobs.len()).map(|_| None).collect();
        // Deterministic group order (BTreeMap) keeps scheduling stable.
        let mut groups: BTreeMap<PatternFingerprint, Vec<usize>> = BTreeMap::new();
        for (j, probe) in probes.into_iter().enumerate() {
            match probe {
                None => results[j] = Some(Ok(Vec::new())),
                Some(Err(e)) => results[j] = Some(Err(e)),
                Some(Ok(fp)) => groups.entry(fp).or_default().push(j),
            }
        }
        let group_list: Vec<(PatternFingerprint, Vec<usize>)> = groups.into_iter().collect();

        let group_outs = self.pool.run(group_list.len(), |g| {
            let (key, members) = &group_list[g];
            let mut outs = Vec::with_capacity(members.len());
            let mut chain_seed: Option<Vec<f64>> = None;
            for &j in members {
                let job = &jobs[j];
                // Solution memo: a tokened job is keyed and looked up
                // before any solve. The group's fingerprint seeds the key;
                // the token, backend parameters and quantised values
                // complete the identity (see the module docs).
                let memo_key = job.memo_token.as_ref().and_then(|token| {
                    let enabled = self.memo.lock().expect("solution memo poisoned").enabled();
                    enabled.then(|| {
                        job.backend
                            .fold_memo_key(JobKeyBuilder::new(*key, self.quantizer).push_str(token))
                            .push_f64s(&job.values)
                            .finish()
                    })
                });
                if let Some(k) = memo_key {
                    let stored = self.memo.lock().expect("solution memo poisoned").get(k);
                    match stored.and_then(|v| v.downcast::<Vec<(f64, B::Solution)>>().ok()) {
                        Some(points) => {
                            self.record_memo_event(true);
                            if self.chain_groups {
                                // The next job's seed is this job's
                                // first-point solution — exactly what a
                                // fresh solve would have handed on.
                                chain_seed =
                                    points.first().map(|(_, s)| job.backend.samples(s).to_vec());
                            }
                            outs.push((j, Ok(points.as_ref().clone())));
                            continue;
                        }
                        None => self.record_memo_event(false),
                    }
                }
                let mut make = |v: f64| (job.make_circuit)(v);
                // Per-job budget: the job's own if set, else a child of
                // the batch budget — so cancelling the batch reaches every
                // job, and a per-job deadline never leaks to neighbours.
                let job_budget = job.budget.clone().unwrap_or_else(|| budget.child());
                let (result, last) = if self.chain_groups {
                    sweep_chain(
                        &job.backend,
                        &job.values,
                        &mut make,
                        &self.cache,
                        &self.refactor_strategy,
                        Some(*key),
                        chain_seed.take(),
                        &job_budget,
                        job.fault.as_ref(),
                    )
                } else {
                    // Determinism mode: a private workspace cache makes
                    // this job's numerics independent of its neighbours.
                    // Its solver counters still roll up to the engine.
                    let local = Mutex::new(WorkspaceCache::new());
                    let out = sweep_chain(
                        &job.backend,
                        &job.values,
                        &mut make,
                        &local,
                        &self.refactor_strategy,
                        Some(*key),
                        None,
                        &job_budget,
                        job.fault.as_ref(),
                    );
                    let local_stats = local
                        .lock()
                        .expect("private workspace cache poisoned")
                        .solver_stats();
                    self.cache
                        .lock()
                        .expect("workspace cache poisoned")
                        .absorb_stats(&local_stats);
                    out
                };
                if self.chain_groups {
                    chain_seed = last;
                }
                if let (Some(k), Some(token), Ok(points)) = (memo_key, &job.memo_token, &result) {
                    self.memo.lock().expect("solution memo poisoned").insert(
                        k,
                        token.clone(),
                        Arc::new(points.clone()),
                    );
                }
                outs.push((j, result));
            }
            outs
        });
        for group in group_outs {
            for (j, result) in group {
                results[j] = Some(result);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every job is either empty, failed its probe, or ran in a group"))
            .collect()
    }

    /// [`SweepEngine::run_batch`] for MPDE jobs, with results wrapped as
    /// [`SweepPoint`]s.
    pub fn run_mpde_batch(&self, jobs: &[MpdeSweepJob]) -> Vec<Result<Vec<SweepPoint>>> {
        self.run_batch(jobs)
            .into_iter()
            .map(|r| {
                r.map(|points| {
                    points
                        .into_iter()
                        .map(|(value, solution)| SweepPoint { value, solution })
                        .collect()
                })
            })
            .collect()
    }

    /// [`SweepEngine::run_batch`] for two-tone HB jobs.
    pub fn run_hb2_batch(&self, jobs: &[Hb2SweepJob]) -> Vec<Result<Vec<Hb2SweepPoint>>> {
        self.run_batch(jobs)
            .into_iter()
            .map(|r| {
                r.map(|points| {
                    points
                        .into_iter()
                        .map(|(value, solution)| Hb2SweepPoint { value, solution })
                        .collect()
                })
            })
            .collect()
    }

    /// [`SweepEngine::run_batch`] for periodic-collocation jobs.
    pub fn run_periodic_fd_batch(
        &self,
        jobs: &[PeriodicFdSweepJob],
    ) -> Vec<Result<Vec<PeriodicFdSweepPoint>>> {
        self.run_batch(jobs)
            .into_iter()
            .map(|r| {
                r.map(|points| {
                    points
                        .into_iter()
                        .map(|(value, solution)| PeriodicFdSweepPoint { value, solution })
                        .collect()
                })
            })
            .collect()
    }

    /// Traces an amplitude × tone-spacing grid: one warm-start chain per
    /// spacing row, rows executed concurrently, all rows sharing the
    /// fingerprint-keyed workspace cache. Points come back row-major
    /// (spacing-outer, amplitude-inner).
    ///
    /// # Errors
    ///
    /// The first failing row's error, by spacing order.
    pub fn run_mpde_grid(&self, sweep: &MpdeGridSweep) -> Result<Vec<MpdeGridPoint>> {
        self.run_mpde_grid_with_budget(sweep, &SolveBudget::unlimited())
    }

    /// [`SweepEngine::run_mpde_grid`] under a grid-wide [`SolveBudget`]:
    /// each row runs under its own [`SolveBudget::child`], so one cancel
    /// stops every row promptly and the first interrupted row's error
    /// surfaces (rows keep their parallel schedule either way).
    ///
    /// # Errors
    ///
    /// The first failing row's error, by spacing order;
    /// [`rfsim_circuit::CircuitError::Interrupted`] when the budget stops
    /// the grid.
    pub fn run_mpde_grid_with_budget(
        &self,
        sweep: &MpdeGridSweep,
        budget: &SolveBudget,
    ) -> Result<Vec<MpdeGridPoint>> {
        let rows = self.pool.run(sweep.spacings.len(), |r| {
            let fd = sweep.spacings[r];
            let backend = MpdeBackend {
                t1_period: sweep.t1_period,
                t2_period: 1.0 / fd,
                options: sweep.options.clone(),
            };
            // Tokened grids memoise per row: the row's backend parameters
            // (including `t2_period = 1/fd`) fold into the key, so one
            // token distinguishes every row of the family. Mirrors
            // `run_batch`'s tokened-job path — grid traffic used to bypass
            // the memo entirely.
            let memo_key = sweep.memo_token.as_ref().and_then(|token| {
                let enabled = self.memo.lock().expect("solution memo poisoned").enabled();
                if !enabled {
                    return None;
                }
                let backend_tag =
                    fnv1a_bytes(FNV_OFFSET, std::any::type_name::<MpdeBackend>().as_bytes());
                let fp = (sweep.make_circuit)(sweep.amplitudes.first().copied()?, fd)
                    .and_then(|circuit| {
                        let dc = circuit.jacobian_fingerprint();
                        let probe = (
                            fnv1a_bytes(backend_tag, &dc.as_u64().to_le_bytes()),
                            backend.dim(&circuit),
                        );
                        let memoised = self
                            .probe_cache
                            .lock()
                            .expect("probe cache poisoned")
                            .get(&probe)
                            .copied();
                        if let Some(key) = memoised {
                            return Ok(key);
                        }
                        let key = backend.fingerprint(&circuit)?;
                        let mut cache = self.probe_cache.lock().expect("probe cache poisoned");
                        if cache.len() >= Self::PROBE_CACHE_CAPACITY {
                            cache.clear();
                        }
                        cache.insert(probe, key);
                        Ok(key)
                    })
                    .ok()?;
                Some((
                    backend
                        .fold_memo_key(JobKeyBuilder::new(fp, self.quantizer).push_str(token))
                        .push_f64s(&sweep.amplitudes)
                        .finish(),
                    fp,
                ))
            });
            if let Some((k, _)) = memo_key {
                let stored = self.memo.lock().expect("solution memo poisoned").get(k);
                if let Some(points) =
                    stored.and_then(|v| v.downcast::<Vec<(f64, MpdeSolution)>>().ok())
                {
                    self.record_memo_event(true);
                    return Ok(points.as_ref().clone());
                }
                self.record_memo_event(false);
            }
            let mut make = |a: f64| (sweep.make_circuit)(a, fd);
            let row_budget = budget.child();
            let (result, _) = sweep_chain(
                &backend,
                &sweep.amplitudes,
                &mut make,
                &self.cache,
                &self.refactor_strategy,
                memo_key.map(|(_, fp)| fp),
                None,
                &row_budget,
                None,
            );
            if let (Some((k, _)), Some(token), Ok(points)) = (memo_key, &sweep.memo_token, &result)
            {
                self.memo.lock().expect("solution memo poisoned").insert(
                    k,
                    token.clone(),
                    Arc::new(points.clone()),
                );
            }
            result
        });
        let mut out = Vec::with_capacity(sweep.spacings.len() * sweep.amplitudes.len());
        for (r, row) in rows.into_iter().enumerate() {
            for (amplitude, solution) in row? {
                out.push(MpdeGridPoint {
                    amplitude,
                    spacing: sweep.spacings[r],
                    solution,
                });
            }
        }
        Ok(out)
    }
}

/// A checked-out workspace and the structure it is serving. `key` is
/// `None` for a fresh workspace taken without a probe (empty cache); it is
/// learned from the workspace itself after the first solve.
struct CheckedOut {
    workspace: LinearSolverWorkspace,
    key: Option<PatternFingerprint>,
    dc_fingerprint: PatternFingerprint,
    dim: usize,
}

/// Parks a checked-out workspace back into the cache under the best known
/// key (an unused, unkeyed workspace carries no warmed state and is simply
/// dropped).
fn park(cache: &Mutex<WorkspaceCache>, c: CheckedOut) {
    let key = c.key.or_else(|| c.workspace.pattern_fingerprint());
    if let Some(k) = key {
        cache
            .lock()
            .expect("workspace cache poisoned")
            .checkin(k, c.workspace);
    }
}

/// The warm-start chain shared by every sweep flavour: builds the circuit
/// per point, routes each point's solve to a cache workspace keyed by the
/// Jacobian structure (re-keying transparently when `make_circuit` changes
/// the topology mid-sweep), and seeds each solve from the previous
/// solution. Returns the per-point results and the *first* solution's
/// samples — the value-matched seed for cross-job chaining (the next job
/// in a topology group starts its sweep at its own first value, which a
/// neighbouring family's first-point solution approximates far better
/// than its last).
#[allow(clippy::too_many_arguments)]
fn sweep_chain<B: SweepBackend>(
    backend: &B,
    values: &[f64],
    make_circuit: &mut dyn FnMut(f64) -> Result<Circuit>,
    cache: &Mutex<WorkspaceCache>,
    strategy: &RefactorStrategy,
    initial_key: Option<PatternFingerprint>,
    seed: Option<Vec<f64>>,
    budget: &SolveBudget,
    fault: Option<&SolveFault>,
) -> (SweepResult<B::Solution>, Option<Vec<f64>>) {
    let mut out = Vec::with_capacity(values.len());
    let mut prev: Option<Vec<f64>> = None;
    let mut first: Option<Vec<f64>> = None;
    let mut state: Option<CheckedOut> = None;
    let result = sweep_chain_inner(
        backend,
        values,
        make_circuit,
        cache,
        strategy,
        &mut state,
        initial_key,
        seed,
        &mut prev,
        &mut first,
        &mut out,
        budget,
        fault,
    );
    // Interrupted or not, the workspace checks back in reusable: the chain
    // owns it only between points, and the solvers unwind cleanly.
    if let Some(c) = state.take() {
        park(cache, c);
    }
    match result {
        Ok(()) => (Ok(out), first),
        Err(e) => (Err(e), None),
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep_chain_inner<B: SweepBackend>(
    backend: &B,
    values: &[f64],
    make_circuit: &mut dyn FnMut(f64) -> Result<Circuit>,
    cache: &Mutex<WorkspaceCache>,
    strategy: &RefactorStrategy,
    state: &mut Option<CheckedOut>,
    mut initial_key: Option<PatternFingerprint>,
    mut seed: Option<Vec<f64>>,
    prev: &mut Option<Vec<f64>>,
    first: &mut Option<Vec<f64>>,
    out: &mut Vec<(f64, B::Solution)>,
    budget: &SolveBudget,
    fault: Option<&SolveFault>,
) -> Result<()> {
    let started = Instant::now();
    // Topologies this chain has already keyed (DC pattern → cache key), so
    // a sweep alternating between structures probes each one once, not at
    // every switch.
    let mut known: Vec<(PatternFingerprint, PatternFingerprint)> = Vec::new();
    // Whether `prev` was produced on a different topology than the current
    // point's: such a carry-over is a hint (retried unseeded on failure),
    // not the trusted same-structure warm start.
    let mut prev_is_hint = false;
    for &value in values {
        // Fail fast between points: the solvers poll the budget inside
        // each point, so this check only closes the gap where a cancel
        // lands between one point finishing and the next starting. The
        // "iterations" slot reports completed sweep points, and there is
        // no single residual for a chain.
        if !budget.is_unlimited() {
            if let Some(i) = budget.interruption(started, out.len(), f64::INFINITY) {
                return Err(i.into());
            }
        }
        if let Some(f) = fault {
            f.run(budget)?;
        }
        let circuit = make_circuit(value)?;
        // Cheap per-point probe: the circuit-level MNA pattern. Any
        // backend-level structure change implies a change here (the grid
        // shape is fixed within one chain), so the expensive backend
        // fingerprint is only recomputed on actual topology changes.
        let dc_fingerprint = circuit.jacobian_fingerprint();
        let same_topology = state
            .as_ref()
            .is_some_and(|c| c.dc_fingerprint == dc_fingerprint);
        if !same_topology {
            if let Some(c) = state.take() {
                // `make_circuit` changed the sparsity pattern mid-sweep:
                // transparently re-key instead of thrashing one workspace
                // (each pattern keeps its own warmed workspace in the
                // cache, ready if the sweep returns to it).
                park(cache, c);
                prev_is_hint = true;
            }
            let mut key = initial_key.take().or_else(|| {
                known
                    .iter()
                    .find(|(dc, _)| *dc == dc_fingerprint)
                    .map(|&(_, k)| k)
            });
            if key.is_none() {
                // The backend fingerprint costs one Jacobian-structure
                // assembly: only pay it when the cache could actually hold
                // a matching workspace.
                let empty = cache.lock().expect("workspace cache poisoned").is_empty();
                if !empty {
                    key = Some(backend.fingerprint(&circuit)?);
                }
            }
            let mut workspace = match key {
                Some(k) => cache.lock().expect("workspace cache poisoned").checkout(k),
                None => LinearSolverWorkspace::new(),
            };
            workspace.set_refactor_strategy(strategy.clone());
            *state = Some(CheckedOut {
                workspace,
                key,
                dc_fingerprint,
                dim: backend.dim(&circuit),
            });
        }
        let checked = state.as_mut().expect("checked out above");
        // Warm start: the within-sweep chain wins; the cross-job seed only
        // applies before the first solved point. Either is dropped if the
        // solution layout no longer matches (e.g. a re-key changed the
        // number of unknowns).
        let mut hinted = false;
        let mut guess = prev.take();
        if guess.is_some() {
            hinted = prev_is_hint;
        } else if let Some(s) = seed.take() {
            if s.len() == checked.dim {
                guess = Some(s);
                hinted = true;
            }
        }
        if guess.as_ref().is_some_and(|g| g.len() != checked.dim) {
            guess = None;
            hinted = false;
        }
        // The sweep point's recovery ladder: the (possibly seeded) solve,
        // plus — when the warm start was only a hint (a cross-job seed or
        // cross-topology carry-over, not a contract) — a retry from the
        // job's own initial guess. The driver classifies the failure:
        // interruptions and structural errors are never retried.
        let mut rungs: Vec<Rung<'_, B::Solution>> =
            vec![Rung::new(RungKind::Plain, |exec: &mut RungExec<'_>| {
                let (ws, b) = exec.parts();
                backend.solve(&circuit, guess.as_deref(), ws, b)
            })];
        if hinted {
            rungs.push(Rung::new(
                RungKind::RetryUnseeded,
                |exec: &mut RungExec<'_>| {
                    let (ws, b) = exec.parts();
                    backend.solve(&circuit, None, ws, b)
                },
            ));
        }
        let solution = NewtonDriver::default()
            .solve_ladder("sweep point", &mut checked.workspace, budget, rungs)?
            .value;
        // A workspace taken without a probe reveals its key after warming;
        // record it so later re-keys (and the final check-in) route right.
        // A Krylov-configured workspace cannot self-report (it never builds
        // the CSC assembly), so fall back to the backend fingerprint rather
        // than lose the warmed workspace at park time.
        if checked.key.is_none() {
            checked.key = checked.workspace.pattern_fingerprint();
            if checked.key.is_none() {
                checked.key = backend.fingerprint(&circuit).ok();
            }
        }
        if let Some(k) = checked.key {
            if !known.iter().any(|(dc, _)| *dc == checked.dc_fingerprint) {
                known.push((checked.dc_fingerprint, k));
            }
        }
        *prev = Some(backend.samples(&solution).to_vec());
        prev_is_hint = false;
        if first.is_none() {
            *first = Some(backend.samples(&solution).to_vec());
        }
        out.push((value, solution));
    }
    Ok(())
}

/// Sweeps a circuit-family parameter, rebuilding the circuit per point via
/// `make_circuit` and warm-starting each MPDE solve from the previous
/// solution.
///
/// Sweep points usually share one topology, making every solve after the
/// first a chain of numeric-only refactorisations. If `make_circuit`
/// changes the Jacobian sparsity pattern mid-sweep (an element switched
/// in above some drive, say), the sweep *re-keys* transparently: each
/// pattern gets its own cached workspace, warm starts are dropped
/// whenever the unknown layout changes, and no stale structure is ever
/// applied to the wrong matrix. For batches of families, prefer
/// [`SweepEngine`], which shares the workspaces across jobs and threads.
///
/// # Errors
///
/// Propagates the first failed solve.
pub fn amplitude_sweep<F>(
    values: &[f64],
    t1_period: f64,
    t2_period: f64,
    base_options: MpdeOptions,
    mut make_circuit: F,
) -> Result<Vec<SweepPoint>>
where
    F: FnMut(f64) -> Result<Circuit>,
{
    let backend = MpdeBackend {
        t1_period,
        t2_period,
        options: base_options,
    };
    let cache = Mutex::new(WorkspaceCache::new());
    let (result, _) = sweep_chain(
        &backend,
        values,
        &mut make_circuit,
        &cache,
        &RefactorStrategy::Sequential,
        None,
        None,
        &SolveBudget::unlimited(),
        None,
    );
    result.map(|points| {
        points
            .into_iter()
            .map(|(value, solution)| SweepPoint { value, solution })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, Waveform, GROUND};

    fn rc_family(
        f1: f64,
        fd: f64,
        r: f64,
        c: f64,
    ) -> impl Fn(f64) -> Result<Circuit> + Send + Sync + 'static {
        move |a: f64| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource(
                "VRF",
                inp,
                GROUND,
                BiWaveform::ShearedCarrier {
                    amplitude: a,
                    k: 1,
                    f1,
                    fd,
                    phase: 0.0,
                    envelope: Envelope::Unit,
                },
            )?;
            b.resistor("R1", inp, out, r)?;
            b.capacitor("C1", out, GROUND, c)?;
            b.build()
        }
    }

    fn small_opts() -> MpdeOptions {
        MpdeOptions {
            n1: 16,
            n2: 8,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_scales_linearly_for_linear_circuit() {
        let (f1, fd) = (1e6, 10e3);
        let amps = [0.1, 0.2, 0.4];
        let points = amplitude_sweep(
            &amps,
            1.0 / f1,
            1.0 / fd,
            small_opts(),
            rc_family(f1, fd, 1e3, 160e-12),
        )
        .expect("sweep");
        assert_eq!(points.len(), 3);
        // Output scales with input for a linear circuit.
        let peak = |p: &SweepPoint| {
            p.solution
                .solution
                .surface(1)
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let (p0, p1, p2) = (peak(&points[0]), peak(&points[1]), peak(&points[2]));
        assert!((p1 / p0 - 2.0).abs() < 0.05, "{p0} {p1}");
        assert!((p2 / p1 - 2.0).abs() < 0.05, "{p1} {p2}");
        // Warm starts make later points cheap.
        let _ = Waveform::Dc(0.0);
    }

    #[test]
    fn amplitude_sweep_rekeys_on_mid_sweep_topology_change() {
        // Above 0.25 V the family switches in a feedthrough capacitor
        // (same unknowns, new coupling): the old single-workspace sweep
        // silently assumed one topology; now each pattern gets its own
        // cached workspace and results match the per-topology runs.
        let (f1, fd) = (1e6, 10e3);
        let family = |a: f64| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource(
                "VRF",
                inp,
                GROUND,
                BiWaveform::ShearedCarrier {
                    amplitude: a,
                    k: 1,
                    f1,
                    fd,
                    phase: 0.0,
                    envelope: Envelope::Unit,
                },
            )?;
            b.resistor("R1", inp, out, 1e3)?;
            b.capacitor("C1", out, GROUND, 160e-12)?;
            if a > 0.25 {
                b.capacitor("CX", inp, out, 20e-12)?;
            }
            b.build()
        };
        let amps = [0.1, 0.2, 0.3, 0.4];
        let points = amplitude_sweep(&amps, 1.0 / f1, 1.0 / fd, small_opts(), family)
            .expect("mixed-topology sweep");
        assert_eq!(points.len(), 4);
        for (p, &a) in points.iter().zip(&amps) {
            let single = rfsim_mpde::solver::solve_mpde(
                &family(a).expect("build"),
                1.0 / f1,
                1.0 / fd,
                small_opts(),
            )
            .expect("single solve");
            let d: f64 = p
                .solution
                .solution
                .data
                .iter()
                .zip(&single.solution.data)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            assert!(d < 1e-3, "amplitude {a}: sweep vs single differ by {d}");
        }
    }

    #[test]
    fn amplitude_sweep_survives_dimension_change() {
        // The unknown count itself changes mid-sweep (an added node): the
        // warm start must be dropped, not fed into the wrong-size system.
        let (f1, fd) = (1e6, 10e3);
        let family = |a: f64| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource(
                "VRF",
                inp,
                GROUND,
                BiWaveform::ShearedCarrier {
                    amplitude: a,
                    k: 1,
                    f1,
                    fd,
                    phase: 0.0,
                    envelope: Envelope::Unit,
                },
            )?;
            if a > 0.15 {
                let mid = b.node("mid");
                b.resistor("R1a", inp, mid, 0.5e3)?;
                b.resistor("R1b", mid, out, 0.5e3)?;
            } else {
                b.resistor("R1", inp, out, 1e3)?;
            }
            b.capacitor("C1", out, GROUND, 160e-12)?;
            b.build()
        };
        let points = amplitude_sweep(
            &[0.1, 0.2],
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                n1: 8,
                n2: 4,
                ..Default::default()
            },
            family,
        )
        .expect("dimension-changing sweep");
        assert_eq!(points.len(), 2);
        assert_ne!(
            points[0].solution.stats.system_size,
            points[1].solution.stats.system_size
        );
    }

    #[test]
    fn engine_batch_matches_sequential_bit_for_bit() {
        let (f1, fd) = (1e6, 10e3);
        let jobs = vec![
            MpdeSweepJob::new(
                "rc",
                vec![0.1, 0.2],
                1.0 / f1,
                1.0 / fd,
                small_opts(),
                rc_family(f1, fd, 1e3, 160e-12),
            ),
            MpdeSweepJob::new(
                "rrc",
                vec![0.1, 0.3],
                1.0 / f1,
                1.0 / fd,
                small_opts(),
                |a: f64| {
                    let mut b = CircuitBuilder::new();
                    let inp = b.node("in");
                    let mid = b.node("mid");
                    let out = b.node("out");
                    b.vsource(
                        "VRF",
                        inp,
                        GROUND,
                        BiWaveform::ShearedCarrier {
                            amplitude: a,
                            k: 1,
                            f1: 1e6,
                            fd: 10e3,
                            phase: 0.0,
                            envelope: Envelope::Unit,
                        },
                    )?;
                    b.resistor("R1", inp, mid, 500.0)?;
                    b.resistor("R2", mid, out, 500.0)?;
                    b.capacitor("C1", out, GROUND, 160e-12)?;
                    b.build()
                },
            ),
        ];
        let engine = SweepEngine::with_pool(WorkerPool::new(2));
        let batch = engine.run_mpde_batch(&jobs);
        // Distinct topologies → two groups, each on a fresh workspace:
        // identical execution to sequential amplitude_sweep calls.
        assert_eq!(engine.cache_stats().patterns, 2);
        let seq_rc = amplitude_sweep(
            &[0.1, 0.2],
            1.0 / f1,
            1.0 / fd,
            small_opts(),
            rc_family(f1, fd, 1e3, 160e-12),
        )
        .expect("sequential rc");
        let batch_rc = batch[0].as_ref().expect("batch rc");
        for (b, s) in batch_rc.iter().zip(&seq_rc) {
            assert_eq!(b.solution.solution.data, s.solution.solution.data);
        }
        assert_eq!(batch[1].as_ref().expect("batch rrc").len(), 2);
    }

    #[test]
    fn engine_groups_same_topology_jobs() {
        let (f1, fd) = (1e6, 10e3);
        let jobs: Vec<MpdeSweepJob> = [1e3, 2e3, 4e3]
            .iter()
            .map(|&r| {
                MpdeSweepJob::new(
                    format!("r{r}"),
                    vec![0.1, 0.2],
                    1.0 / f1,
                    1.0 / fd,
                    small_opts(),
                    rc_family(f1, fd, r, 160e-12),
                )
            })
            .collect();
        let engine = SweepEngine::with_pool(WorkerPool::new(2));
        let results = engine.run_mpde_batch(&jobs);
        for r in &results {
            assert_eq!(r.as_ref().expect("sweep").len(), 2);
        }
        let stats = engine.cache_stats();
        // One topology: one group, one workspace threaded through all
        // three jobs (two cache hits), parked once at the end.
        assert_eq!(stats.patterns, 1);
        assert_eq!(stats.parked, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        // A second batch starts from the parked workspace.
        let again = engine.run_mpde_batch(&jobs[..1]);
        assert!(again[0].is_ok());
        assert_eq!(engine.cache_stats().hits, 3);
    }

    #[test]
    fn engine_reports_per_job_errors() {
        let (f1, fd) = (1e6, 10e3);
        let jobs = vec![
            MpdeSweepJob::new("empty", vec![], 1.0 / f1, 1.0 / fd, small_opts(), {
                rc_family(f1, fd, 1e3, 160e-12)
            }),
            MpdeSweepJob::new(
                "bad-build",
                vec![0.1],
                1.0 / f1,
                1.0 / fd,
                small_opts(),
                |_a: f64| {
                    let mut b = CircuitBuilder::new();
                    let inp = b.node("in");
                    b.resistor("R1", inp, GROUND, -1.0)?; // invalid value
                    b.build()
                },
            ),
            MpdeSweepJob::new(
                "good",
                vec![0.1],
                1.0 / f1,
                1.0 / fd,
                small_opts(),
                rc_family(f1, fd, 1e3, 160e-12),
            ),
        ];
        let engine = SweepEngine::with_pool(WorkerPool::new(1));
        let results = engine.run_mpde_batch(&jobs);
        assert!(matches!(&results[0], Ok(v) if v.is_empty()));
        assert!(results[1].is_err());
        assert_eq!(results[2].as_ref().expect("good job").len(), 1);
    }

    #[test]
    fn hb2_and_periodic_fd_batches_run() {
        let (f1, fd) = (1e6, 10e3);
        let hb_jobs = vec![Hb2SweepJob::new(
            "hb-rc",
            vec![0.1, 0.2],
            1.0 / f1,
            1.0 / fd,
            rfsim_hb::Hb2Options {
                n1: 8,
                n2: 4,
                ..Default::default()
            },
            rc_family(f1, fd, 1e3, 160e-12),
        )];
        let fd_jobs = vec![PeriodicFdSweepJob::new(
            "fd-rc",
            vec![0.5, 1.0],
            1.0 / 200e3,
            PeriodicFdOptions {
                n_samples: 32,
                ..Default::default()
            },
            |a: f64| {
                let mut b = CircuitBuilder::new();
                let inp = b.node("in");
                let out = b.node("out");
                b.vsource("V1", inp, GROUND, Waveform::sine(a, 200e3))?;
                b.resistor("R1", inp, out, 1e3)?;
                b.capacitor("C1", out, GROUND, 1e-9)?;
                b.build()
            },
        )];
        let engine = SweepEngine::with_pool(WorkerPool::new(2));
        let hb = engine.run_hb2_batch(&hb_jobs);
        let points = hb[0].as_ref().expect("hb sweep");
        assert_eq!(points.len(), 2);
        // Linear circuit: amplitude doubles with drive.
        let peak = |p: &Hb2SweepPoint| {
            p.solution
                .surface(1)
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        assert!((peak(&points[1]) / peak(&points[0]) - 2.0).abs() < 0.05);
        let pss = engine.run_periodic_fd_batch(&fd_jobs);
        assert_eq!(pss[0].as_ref().expect("fd sweep").len(), 2);
        // HB and collocation patterns differ: two cache entries.
        assert_eq!(engine.cache_stats().patterns, 2);
    }

    #[test]
    fn engine_surfaces_solver_stats_and_refactor_strategy() {
        let (f1, fd) = (1e6, 10e3);
        let jobs = vec![MpdeSweepJob::new(
            "rc",
            vec![0.1, 0.2, 0.3],
            1.0 / f1,
            1.0 / fd,
            small_opts(),
            rc_family(f1, fd, 1e3, 160e-12),
        )];
        // Intra-solve pipeline on a width-2 pool: correctness is testable
        // on any host (threads run regardless of core count).
        let engine = SweepEngine::with_pool(WorkerPool::new(1))
            .with_refactor_strategy(RefactorStrategy::Parallel(WorkerPool::new(2)));
        let results = engine.run_mpde_batch(&jobs);
        assert_eq!(results[0].as_ref().expect("sweep").len(), 3);
        let stats = engine.solver_stats();
        assert!(stats.refactorizations >= 2, "{stats:?}");
        assert_eq!(
            stats.parallel_refactorizations, stats.refactorizations,
            "the configured strategy must reach the checked-out workspaces: {stats:?}"
        );
        assert_eq!(stats.full_fallbacks, 0, "{stats:?}");
        assert_eq!(stats.full_factorizations, 1, "{stats:?}");
        // Sequential engine on the same batch: identical numerics, no
        // pipeline counters.
        let seq = SweepEngine::with_pool(WorkerPool::new(1));
        let seq_results = seq.run_mpde_batch(&jobs);
        let a = results[0].as_ref().expect("par");
        let b = seq_results[0].as_ref().expect("seq");
        for (pa, pb) in a.iter().zip(b) {
            assert_eq!(pa.solution.solution.data, pb.solution.solution.data);
        }
        assert_eq!(seq.solver_stats().parallel_refactorizations, 0);
    }

    #[test]
    fn memo_serves_repeated_batches_bit_identically_without_newton() {
        let (f1, fd) = (1e6, 10e3);
        let jobs: Vec<MpdeSweepJob> = [1e3, 2e3]
            .iter()
            .map(|&r| {
                MpdeSweepJob::new(
                    format!("r{r}"),
                    vec![0.1, 0.2],
                    1.0 / f1,
                    1.0 / fd,
                    small_opts(),
                    rc_family(f1, fd, r, 160e-12),
                )
                .with_memo_token(format!("rc/{r}"))
            })
            .collect();
        let engine = SweepEngine::with_pool(WorkerPool::new(1));
        let first = engine.run_mpde_batch(&jobs);
        let after_first = engine.solver_stats();
        assert_eq!(after_first.engine_memo_hits, 0);
        assert_eq!(after_first.engine_memo_misses, 2);
        assert_eq!(engine.memo_stats().insertions, 2);

        let again = engine.run_mpde_batch(&jobs);
        let stats = engine.memo_stats();
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(engine.solver_stats().engine_memo_hits, 2);
        // No Newton ran on the repeat: the solver counters did not move.
        let after_again = engine.solver_stats();
        assert_eq!(
            after_again.refactorizations + after_again.full_factorizations,
            after_first.refactorizations + after_first.full_factorizations,
        );
        for (a, b) in first.iter().zip(&again) {
            let (a, b) = (a.as_ref().expect("first"), b.as_ref().expect("again"));
            for (pa, pb) in a.iter().zip(b) {
                assert_eq!(pa.solution.solution.data, pb.solution.solution.data);
            }
        }
    }

    #[test]
    fn memo_tokens_split_value_twins_and_untokened_jobs_bypass() {
        // Two families share one topology and one value grid — only the
        // token separates them. A job without a token never consults the
        // memo, even when an entry for its structure exists.
        let (f1, fd) = (1e6, 10e3);
        let job = |r: f64, token: Option<&str>| {
            let j = MpdeSweepJob::new(
                format!("r{r}"),
                vec![0.1, 0.2],
                1.0 / f1,
                1.0 / fd,
                small_opts(),
                rc_family(f1, fd, r, 160e-12),
            );
            match token {
                Some(t) => j.with_memo_token(t),
                None => j,
            }
        };
        let engine = SweepEngine::with_pool(WorkerPool::new(1));
        let r1 = engine.run_mpde_batch(&[job(1e3, Some("rc/1k"))]);
        // Same topology + values, different token: must not be served
        // the 1 kΩ solution.
        let r2 = engine.run_mpde_batch(&[job(2e3, Some("rc/2k"))]);
        assert_eq!(engine.memo_stats().hits, 0);
        let (p1, p2) = (r1[0].as_ref().expect("r1"), r2[0].as_ref().expect("r2"));
        assert_ne!(
            p1[0].solution.solution.data, p2[0].solution.solution.data,
            "different load resistances must produce different solutions"
        );
        // Untokened twin of the 1 kΩ job: bypasses the memo entirely.
        let before = engine.memo_stats();
        let _ = engine.run_mpde_batch(&[job(1e3, None)]);
        let after = engine.memo_stats();
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn memo_capacity_bounds_and_eviction() {
        let (f1, fd) = (1e6, 10e3);
        let job = |r: f64| {
            MpdeSweepJob::new(
                format!("r{r}"),
                vec![0.1],
                1.0 / f1,
                1.0 / fd,
                small_opts(),
                rc_family(f1, fd, r, 160e-12),
            )
            .with_memo_token(format!("rc/{r}"))
        };
        let engine = SweepEngine::with_pool(WorkerPool::new(1)).with_solution_memo(1);
        let _ = engine.run_mpde_batch(&[job(1e3)]);
        let _ = engine.run_mpde_batch(&[job(2e3)]);
        let stats = engine.memo_stats();
        assert_eq!(stats.len, 1, "{stats:?}");
        assert_eq!(stats.evictions, 1, "{stats:?}");
        // The 1 kΩ entry was evicted: re-running it is a miss + re-solve.
        let _ = engine.run_mpde_batch(&[job(1e3)]);
        assert_eq!(engine.memo_stats().hits, 0);
        // Targeted eviction by token, then wholesale.
        assert_eq!(engine.evict_memo(Some("rc/1000")), 1);
        let _ = engine.run_mpde_batch(&[job(2e3)]);
        assert_eq!(engine.evict_memo(None), 1);
        assert_eq!(engine.memo_stats().len, 0);
        // Capacity 0 disables the memo outright.
        let off = SweepEngine::with_pool(WorkerPool::new(1)).with_solution_memo(0);
        let _ = off.run_mpde_batch(&[job(1e3)]);
        let _ = off.run_mpde_batch(&[job(1e3)]);
        let stats = off.memo_stats();
        assert_eq!(stats.hits + stats.misses + stats.insertions, 0, "{stats:?}");
    }

    #[test]
    fn memo_hit_matches_fresh_deterministic_resolve() {
        // Deterministic mode: a memo hit must be bit-identical to what a
        // fresh engine would solve for the same job.
        let (f1, fd) = (1e6, 10e3);
        let job = || {
            vec![MpdeSweepJob::new(
                "rc",
                vec![0.1, 0.2],
                1.0 / f1,
                1.0 / fd,
                small_opts(),
                rc_family(f1, fd, 1e3, 160e-12),
            )
            .with_memo_token("rc/1k")]
        };
        let engine = SweepEngine::with_pool(WorkerPool::new(1)).chain_topology_groups(false);
        let _ = engine.run_mpde_batch(&job());
        let memo = engine.run_mpde_batch(&job());
        assert_eq!(engine.memo_stats().hits, 1);
        let fresh_engine = SweepEngine::with_pool(WorkerPool::new(1)).chain_topology_groups(false);
        let fresh = fresh_engine.run_mpde_batch(&job());
        for (m, f) in memo[0]
            .as_ref()
            .expect("memo")
            .iter()
            .zip(fresh[0].as_ref().expect("fresh"))
        {
            assert_eq!(m.solution.solution.data, f.solution.solution.data);
        }
    }

    #[test]
    fn grid_sweep_covers_amplitude_times_spacing() {
        let f1 = 1e6;
        let sweep = MpdeGridSweep::new(
            "rc-grid",
            vec![0.1, 0.2],
            vec![10e3, 20e3],
            1.0 / f1,
            MpdeOptions {
                n1: 8,
                n2: 4,
                ..Default::default()
            },
            move |a, fd| rc_family(f1, fd, 1e3, 160e-12)(a),
        );
        let engine = SweepEngine::with_pool(WorkerPool::new(2));
        let points = engine.run_mpde_grid(&sweep).expect("grid");
        assert_eq!(points.len(), 4);
        // Row-major: spacing outer, amplitude inner.
        assert_eq!(points[0].spacing, 10e3);
        assert_eq!(points[1].spacing, 10e3);
        assert_eq!(points[3].spacing, 20e3);
        assert_eq!(points[0].amplitude, 0.1);
        assert_eq!(points[1].amplitude, 0.2);
        // Tone spacing changes values, not structure: one pattern serves
        // the whole grid.
        assert_eq!(engine.cache_stats().patterns, 1);
        // Linearity across the grid: each row scales with amplitude.
        for row in 0..2 {
            let p0 = &points[2 * row];
            let p1 = &points[2 * row + 1];
            let peak = |p: &MpdeGridPoint| {
                p.solution
                    .solution
                    .surface(1)
                    .iter()
                    .fold(0.0f64, |m, v| m.max(v.abs()))
            };
            assert!((peak(p1) / peak(p0) - 2.0).abs() < 0.05);
        }
    }

    fn small_grid(f1: f64) -> MpdeGridSweep {
        MpdeGridSweep::new(
            "rc-grid",
            vec![0.1, 0.2],
            vec![10e3, 20e3],
            1.0 / f1,
            MpdeOptions {
                n1: 8,
                n2: 4,
                ..Default::default()
            },
            move |a, fd| rc_family(f1, fd, 1e3, 160e-12)(a),
        )
    }

    #[test]
    fn grid_sweep_memoises_rows_under_one_token() {
        let f1 = 1e6;
        let sweep = small_grid(f1).with_memo_token("rc_grid/1k");
        let engine = SweepEngine::with_pool(WorkerPool::new(2));
        let first = engine.run_mpde_grid(&sweep).expect("grid");
        let after_first = engine.solver_stats();
        assert_eq!(after_first.engine_memo_hits, 0);
        assert_eq!(after_first.engine_memo_misses, 2, "one miss per row");
        assert_eq!(engine.memo_stats().insertions, 2);

        let again = engine.run_mpde_grid(&sweep).expect("grid repeat");
        assert_eq!(engine.memo_stats().hits, 2, "each row served from memo");
        // No Newton ran on the repeat: the factorisation counters held.
        let after_again = engine.solver_stats();
        assert_eq!(
            after_again.refactorizations + after_again.full_factorizations,
            after_first.refactorizations + after_first.full_factorizations,
        );
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.solution.solution.data, b.solution.solution.data);
        }

        // Rows share the token but not the key: the 20 kHz row's
        // t2_period folds into its identity, so an untokened grid or a
        // different family never aliases it. Eviction by the single
        // token clears both rows.
        assert_eq!(engine.evict_memo(Some("rc_grid/1k")), 2);
        assert_eq!(engine.memo_stats().len, 0);
    }

    #[test]
    fn batch_cancel_fans_out_to_every_job_and_leaves_engine_reusable() {
        let (f1, fd) = (1e6, 10e3);
        let jobs: Vec<MpdeSweepJob> = [1e3, 2e3]
            .iter()
            .map(|&r| {
                MpdeSweepJob::new(
                    format!("r{r}"),
                    vec![0.1, 0.2],
                    1.0 / f1,
                    1.0 / fd,
                    small_opts(),
                    rc_family(f1, fd, r, 160e-12),
                )
            })
            .collect();
        let engine = SweepEngine::with_pool(WorkerPool::new(2));
        let token = rfsim_numerics::CancelToken::new();
        token.cancel();
        let budget = SolveBudget::unlimited().with_cancel(token);
        let results = engine.run_batch_with_budget(&jobs, &budget);
        for r in &results {
            let e = r.as_ref().expect_err("cancelled batch");
            let i = e.interrupted().expect("typed interruption");
            assert_eq!(i.reason, rfsim_numerics::InterruptReason::Cancelled);
        }
        // The cancel poisoned nothing: the same engine solves the same
        // batch cleanly afterwards.
        let retry = engine.run_batch(&jobs);
        assert!(retry.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn per_job_budget_and_fault_fail_only_their_job() {
        let (f1, fd) = (1e6, 10e3);
        let job = |r: f64| {
            MpdeSweepJob::new(
                format!("r{r}"),
                vec![0.1, 0.2],
                1.0 / f1,
                1.0 / fd,
                small_opts(),
                rc_family(f1, fd, r, 160e-12),
            )
        };
        // A cancelled per-job budget interrupts its job; a diverge fault
        // fails its job numerically; the healthy neighbour is untouched.
        let cancelled = rfsim_numerics::CancelToken::new();
        cancelled.cancel();
        let jobs = vec![
            job(1e3).with_budget(SolveBudget::unlimited().with_cancel(cancelled)),
            job(2e3),
            job(3e3).with_fault(rfsim_circuit::fault::SolveFault::diverge()),
        ];
        let engine = SweepEngine::with_pool(WorkerPool::new(2));
        let results = engine.run_batch_with_budget(&jobs, &SolveBudget::unlimited());
        let interrupted = results[0].as_ref().expect_err("cancelled job");
        assert!(interrupted.is_interrupted());
        assert!(results[1].is_ok(), "healthy neighbour survives");
        let faulted = results[2].as_ref().expect_err("faulted job");
        assert!(
            !faulted.is_interrupted(),
            "a diverge fault is a numerical failure, not an interruption: {faulted}"
        );
    }

    #[test]
    fn grid_cancel_surfaces_interruption() {
        let f1 = 1e6;
        let sweep = small_grid(f1);
        let engine = SweepEngine::with_pool(WorkerPool::new(2));
        let token = rfsim_numerics::CancelToken::new();
        token.cancel();
        let budget = SolveBudget::unlimited().with_cancel(token);
        let err = engine
            .run_mpde_grid_with_budget(&sweep, &budget)
            .expect_err("cancelled grid");
        assert!(err.is_interrupted(), "{err}");
        // And the engine still serves the grid afterwards.
        assert_eq!(engine.run_mpde_grid(&sweep).expect("retry").len(), 4);
    }
}
