//! Warm-started parameter sweeps.
//!
//! Steady-state solutions vary smoothly with source amplitude, so each
//! sweep point seeds the next solve — the standard way to trace gain
//! compression curves cheaply.

use rfsim_circuit::newton::LinearSolverWorkspace;
use rfsim_circuit::{Circuit, Result};
use rfsim_mpde::solver::{solve_mpde_with_workspace, InitialGuess, MpdeOptions};
use rfsim_mpde::MpdeSolution;

/// One point of an amplitude sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept value (e.g. RF amplitude in volts).
    pub value: f64,
    /// The MPDE solution at this point.
    pub solution: MpdeSolution,
}

/// Sweeps a circuit-family parameter, rebuilding the circuit per point via
/// `make_circuit` and warm-starting each MPDE solve from the previous
/// solution.
///
/// # Errors
///
/// Propagates the first failed solve.
pub fn amplitude_sweep<F>(
    values: &[f64],
    t1_period: f64,
    t2_period: f64,
    base_options: MpdeOptions,
    mut make_circuit: F,
) -> Result<Vec<SweepPoint>>
where
    F: FnMut(f64) -> Result<Circuit>,
{
    let mut out: Vec<SweepPoint> = Vec::with_capacity(values.len());
    let mut prev_data: Option<Vec<f64>> = None;
    // All sweep points share the circuit topology and grid shape, hence one
    // Jacobian structure: the workspace makes every solve after the first a
    // sequence of numeric-only refactorisations.
    let mut workspace = LinearSolverWorkspace::new();
    for &value in values {
        let circuit = make_circuit(value)?;
        let mut options = base_options.clone();
        if let Some(data) = prev_data.take() {
            options.initial_guess = InitialGuess::Samples(data);
        }
        let solution =
            solve_mpde_with_workspace(&circuit, t1_period, t2_period, options, &mut workspace)?;
        prev_data = Some(solution.solution.data.clone());
        out.push(SweepPoint { value, solution });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, Waveform, GROUND};

    #[test]
    fn sweep_scales_linearly_for_linear_circuit() {
        let (f1, fd) = (1e6, 10e3);
        let amps = [0.1, 0.2, 0.4];
        let points = amplitude_sweep(
            &amps,
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                n1: 16,
                n2: 8,
                ..Default::default()
            },
            |a| {
                let mut b = CircuitBuilder::new();
                let inp = b.node("in");
                let out = b.node("out");
                b.vsource(
                    "VRF",
                    inp,
                    GROUND,
                    BiWaveform::ShearedCarrier {
                        amplitude: a,
                        k: 1,
                        f1,
                        fd,
                        phase: 0.0,
                        envelope: Envelope::Unit,
                    },
                )?;
                b.resistor("R1", inp, out, 1e3)?;
                b.capacitor("C1", out, GROUND, 160e-12)?;
                b.build()
            },
        )
        .expect("sweep");
        assert_eq!(points.len(), 3);
        // Output scales with input for a linear circuit.
        let peak = |p: &SweepPoint| {
            p.solution
                .solution
                .surface(1)
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let (p0, p1, p2) = (peak(&points[0]), peak(&points[1]), peak(&points[2]));
        assert!((p1 / p0 - 2.0).abs() < 0.05, "{p0} {p1}");
        assert!((p2 / p1 - 2.0).abs() < 0.05, "{p1} {p2}");
        // Warm starts make later points cheap.
        let _ = Waveform::Dc(0.0);
    }
}
