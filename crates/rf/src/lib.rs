//! RF measurement layer for the DAC 2002 reproduction.
//!
//! Post-processing the paper's evaluation needs on top of MPDE solutions:
//!
//! * [`bits`] — PRBS generators and bit-envelope construction.
//! * [`measure`] — conversion gain, harmonic distortion (HD2/HD3/THD),
//!   dB/dBm helpers, adjacent-channel power.
//! * [`eye`] — eye diagrams and ISI metrics over baseband envelopes.
//! * [`sweep`] — warm-started parameter sweeps (amplitude → compression)
//!   and the batched multi-topology [`sweep::SweepEngine`]: a
//!   fingerprint-keyed workspace cache with warm-start chaining per
//!   topology group, executed on a hand-rolled worker pool.
//! * [`key`] — quantised [`key::JobKey`]s for cross-batch solution
//!   memoisation: the identity shared by the engine's built-in solution
//!   memo ([`sweep::SweepEngine::with_solution_memo`]) and the
//!   `rfsim-serve` solution store.
//! * [`lru`] — the bounded, tag-evictable [`lru::TaggedLru`] both of
//!   those memo layers store their entries in.
//! * [`pool`] — the fixed-thread [`pool::WorkerPool`] behind the engine.
//!
//! See `docs/architecture.md` for how this crate sits in the nine-crate
//! stack and how the fingerprint → key → memo data flow composes.

#![deny(missing_docs)]

pub mod bits;
pub mod eye;
pub mod key;
pub mod lru;
pub mod measure;
pub mod pool;
pub mod sweep;
