//! RF measurement layer for the DAC 2002 reproduction.
//!
//! Post-processing the paper's evaluation needs on top of MPDE solutions:
//!
//! * [`bits`] — PRBS generators and bit-envelope construction.
//! * [`measure`] — conversion gain, harmonic distortion (HD2/HD3/THD),
//!   dB/dBm helpers, adjacent-channel power.
//! * [`eye`] — eye diagrams and ISI metrics over baseband envelopes.
//! * [`sweep`] — warm-started parameter sweeps (amplitude → compression).

pub mod bits;
pub mod eye;
pub mod measure;
pub mod sweep;
