//! Re-export of the fixed-thread worker pool.
//!
//! The pool started life here as the sweep engine's scheduler; it now lives
//! in [`rfsim_numerics::pool`] so the sparse-LU layer can thread numeric
//! refactorisation through the same workers without a dependency cycle.
//! Existing `rfsim_rf::pool::WorkerPool` imports keep working unchanged.

pub use rfsim_numerics::pool::WorkerPool;
