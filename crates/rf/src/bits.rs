//! Pseudo-random bit sequences and bit envelopes.

use rfsim_circuit::Envelope;

/// Maximal-length LFSR (PRBS) generator.
///
/// Supported orders and taps (x^n + x^k + 1):
/// 7 → (7,6), 9 → (9,5), 15 → (15,14), 23 → (23,18), 31 → (31,28).
#[derive(Debug, Clone)]
pub struct Prbs {
    state: u32,
    order: u32,
    tap: u32,
}

impl Prbs {
    /// Creates a PRBS generator of the given order with a non-zero seed.
    ///
    /// # Panics
    ///
    /// Panics for unsupported orders.
    pub fn new(order: u32, seed: u32) -> Self {
        let tap = match order {
            7 => 6,
            9 => 5,
            15 => 14,
            23 => 18,
            31 => 28,
            _ => panic!("unsupported PRBS order {order} (use 7, 9, 15, 23, 31)"),
        };
        let mask = (1u32 << order) - 1;
        let state = (seed & mask).max(1);
        Prbs { state, order, tap }
    }

    /// Next bit of the sequence.
    pub fn next_bit(&mut self) -> bool {
        let new = ((self.state >> (self.order - 1)) ^ (self.state >> (self.tap - 1))) & 1;
        self.state = ((self.state << 1) | new) & ((1u32 << self.order) - 1);
        new == 1
    }

    /// Collects the next `n` bits.
    pub fn take_bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Period of the maximal-length sequence (`2^order − 1`).
    pub fn period(&self) -> usize {
        (1usize << self.order) - 1
    }
}

/// Builds an antipodal bit envelope (one difference period spans the whole
/// pattern) with raised-cosine edges.
pub fn bit_envelope(pattern: Vec<bool>, edge_fraction: f64) -> Envelope {
    Envelope::bits(pattern, edge_fraction)
}

/// Decodes an antipodal envelope back to bits by sampling bit centres.
///
/// Use this when the envelope *is* the bit waveform. For a down-converted
/// output that still rides on the residual difference-frequency carrier
/// (`fd = k·f1 − f2 ≠ 0`, the paper's Figure 4 situation), use
/// [`decode_bpsk_envelope`] instead.
pub fn decode_envelope(samples: &[f64], num_bits: usize) -> Vec<bool> {
    let n = samples.len();
    (0..num_bits)
        .map(|k| {
            // Centre of bit k in the sampled period.
            let pos = ((k as f64 + 0.5) / num_bits as f64 * n as f64) as usize % n.max(1);
            samples[pos] >= 0.0
        })
        .collect()
}

/// Decodes bits from a baseband envelope that still carries the residual
/// difference-frequency tone: `env(u) ≈ A·m(u)·cos(2πu + φ)` over one slow
/// period (`u ∈ [0,1)`).
///
/// Coherently demodulates with the estimated carrier phase, integrates per
/// bit slot with a |cos|² weight, and thresholds. The leading bit's sign is
/// ambiguous in BPSK; the convention here resolves the overall polarity so
/// that the *majority* carrier phase matches `φ` from the fundamental bin,
/// which recovers patterns whose first decoded bit may be inverted — callers
/// comparing to a known pattern should also check the complement.
pub fn decode_bpsk_envelope(samples: &[f64], num_bits: usize) -> Vec<bool> {
    let n = samples.len();
    if n == 0 || num_bits == 0 {
        return vec![false; num_bits];
    }
    // Per-bit matched-filter correlations at a trial carrier phase.
    let correlate = |phi: f64| -> Vec<f64> {
        (0..num_bits)
            .map(|k| {
                let mut acc = 0.0;
                let mut weight = 0.0;
                let lo = k * n / num_bits;
                let hi = ((k + 1) * n / num_bits).min(n);
                for j in lo..hi {
                    let u = j as f64 / n as f64;
                    let carrier = (2.0 * std::f64::consts::PI * u + phi).cos();
                    acc += samples[j] * carrier;
                    weight += carrier * carrier;
                }
                if weight > 0.0 {
                    acc / weight
                } else {
                    0.0
                }
            })
            .collect()
    };
    // The fundamental-bin phase is corrupted by the bit pattern's own
    // sidebands, so search a coarse phase grid for the most decisive
    // demodulation (largest total correlation magnitude). The π-periodic
    // polarity ambiguity is inherent to BPSK.
    let mut best: Option<(f64, Vec<f64>)> = None;
    for step in 0..32 {
        let phi = std::f64::consts::PI * step as f64 / 32.0;
        let corr = correlate(phi);
        let score: f64 = corr.iter().map(|c| c.abs()).sum();
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, corr));
        }
    }
    best.expect("at least one phase tried")
        .1
        .iter()
        .map(|&c| c >= 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prbs7_has_full_period() {
        let mut p = Prbs::new(7, 1);
        let period = p.period();
        assert_eq!(period, 127);
        let bits = p.take_bits(period);
        // Maximal-length property: 64 ones, 63 zeros.
        let ones = bits.iter().filter(|&&b| b).count();
        assert_eq!(ones, 64);
        // Sequence repeats after one period.
        let mut q = Prbs::new(7, 1);
        let first = q.take_bits(period);
        let second = q.take_bits(period);
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_shift_sequence() {
        let a = Prbs::new(9, 1).take_bits(50);
        let b = Prbs::new(9, 77).take_bits(50);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn bad_order_panics() {
        let _ = Prbs::new(4, 1);
    }

    #[test]
    fn zero_seed_coerced_nonzero() {
        // An all-zero LFSR state would lock up; the constructor prevents it.
        let mut p = Prbs::new(7, 0);
        let bits = p.take_bits(20);
        assert!(bits.iter().any(|&b| b) || bits.iter().any(|&b| !b));
        assert!(bits.iter().any(|&b| b), "sequence is not stuck at zero");
    }

    #[test]
    fn envelope_roundtrip_decode() {
        let pattern = vec![true, false, false, true, true, false];
        let env = bit_envelope(pattern.clone(), 0.1);
        let samples: Vec<f64> = (0..120).map(|k| env.eval(k as f64 / 120.0)).collect();
        assert_eq!(decode_envelope(&samples, 6), pattern);
    }

    #[test]
    fn bpsk_roundtrip_decode() {
        use std::f64::consts::PI;
        let pattern = vec![true, false, true, true];
        let env = bit_envelope(pattern.clone(), 0.05);
        let phi = 0.9;
        // Down-converted signal: bits on the residual fd carrier.
        let samples: Vec<f64> = (0..240)
            .map(|k| {
                let u = k as f64 / 240.0;
                0.3 * env.eval(u) * (2.0 * PI * u + phi).cos()
            })
            .collect();
        let decoded = decode_bpsk_envelope(&samples, 4);
        let inverted: Vec<bool> = decoded.iter().map(|b| !b).collect();
        assert!(
            decoded == pattern || inverted == pattern,
            "decoded {decoded:?} (or complement) should match {pattern:?}"
        );
    }

    #[test]
    fn bpsk_decode_empty_input() {
        assert_eq!(decode_bpsk_envelope(&[], 3), vec![false; 3]);
    }
}
