//! Eye diagrams and inter-symbol-interference metrics.
//!
//! The paper's conclusion: "The new method is well-suited for estimating
//! effects such as ISI and ACI in communication symbol streams." These
//! helpers fold a baseband envelope into bit slots and quantify the eye
//! opening.

/// An eye diagram: envelope samples folded onto a single bit slot.
#[derive(Debug, Clone)]
pub struct EyeDiagram {
    /// Traces, one per bit, each `samples_per_bit` long (antipodal traces
    /// for `false` bits are *negated* so the eye is single-polarity).
    pub traces: Vec<Vec<f64>>,
    /// Samples per bit slot.
    pub samples_per_bit: usize,
}

impl EyeDiagram {
    /// Folds a one-period envelope carrying `num_bits` symbols.
    ///
    /// The envelope is resampled so each bit slot has the same number of
    /// points. Bits are classified by the sign at the slot centre and
    /// normalised to positive polarity.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` is zero or the envelope is empty.
    pub fn fold(envelope: &[f64], num_bits: usize) -> Self {
        assert!(num_bits > 0, "num_bits must be positive");
        assert!(!envelope.is_empty(), "envelope must be non-empty");
        let n = envelope.len();
        let spb = (n / num_bits).max(1);
        let mut traces = Vec::with_capacity(num_bits);
        for k in 0..num_bits {
            let mut trace = Vec::with_capacity(spb);
            for s in 0..spb {
                // Sample position within the envelope (nearest sample).
                let pos = (k as f64 + s as f64 / spb as f64) / num_bits as f64;
                let idx = ((pos * n as f64).round() as usize) % n;
                trace.push(envelope[idx]);
            }
            let centre = trace[spb / 2];
            if centre < 0.0 {
                for v in &mut trace {
                    *v = -*v;
                }
            }
            traces.push(trace);
        }
        EyeDiagram {
            traces,
            samples_per_bit: spb,
        }
    }

    /// Worst-case eye opening: the minimum over the central half of the bit
    /// slot of the minimum trace value. 1.0 = full swing, ≤ 0 = closed eye.
    pub fn opening(&self) -> f64 {
        let spb = self.samples_per_bit;
        let lo = spb / 4;
        let hi = (3 * spb / 4).max(lo + 1);
        let mut worst = f64::INFINITY;
        for trace in &self.traces {
            for &v in &trace[lo..hi.min(trace.len())] {
                worst = worst.min(v);
            }
        }
        worst
    }

    /// ISI metric: peak-to-peak spread of trace values at the slot centre,
    /// normalised by the mean centre level. 0 = no ISI.
    pub fn isi(&self) -> f64 {
        let centre = self.samples_per_bit / 2;
        let centres: Vec<f64> = self.traces.iter().map(|t| t[centre]).collect();
        let mean = centres.iter().sum::<f64>() / centres.len() as f64;
        if mean == 0.0 {
            return f64::INFINITY;
        }
        let max = centres.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = centres.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min) / mean.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_envelope(bits: &[bool], spb: usize) -> Vec<f64> {
        bits.iter()
            .flat_map(|&b| std::iter::repeat_n(if b { 1.0 } else { -1.0 }, spb))
            .collect()
    }

    #[test]
    fn clean_bits_have_open_eye() {
        let env = clean_envelope(&[true, false, true, true], 32);
        let eye = EyeDiagram::fold(&env, 4);
        assert!(
            (eye.opening() - 1.0).abs() < 1e-12,
            "opening {}",
            eye.opening()
        );
        assert!(eye.isi() < 1e-12);
    }

    #[test]
    fn attenuated_bit_reduces_opening() {
        let mut env = clean_envelope(&[true, true, false, true], 32);
        // ISI-like droop on the third bit.
        for v in env.iter_mut().skip(64).take(32) {
            *v *= 0.5;
        }
        let eye = EyeDiagram::fold(&env, 4);
        assert!((eye.opening() - 0.5).abs() < 1e-9);
        assert!(eye.isi() > 0.3);
    }

    #[test]
    fn closed_eye_detected() {
        // One bit flipped halfway through its slot: a trace crosses zero in
        // the central region.
        let mut env = clean_envelope(&[true, false], 64);
        for v in env.iter_mut().skip(80).take(20) {
            *v = 0.05;
        }
        let eye = EyeDiagram::fold(&env, 2);
        assert!(eye.opening() < 0.1);
    }

    #[test]
    #[should_panic(expected = "num_bits")]
    fn zero_bits_rejected() {
        let _ = EyeDiagram::fold(&[1.0], 0);
    }
}
