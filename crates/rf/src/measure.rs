//! Conversion gain, distortion and channel-power measurements.

use rfsim_mpde::MultitimeSolution;
use rfsim_numerics::fft::fft_real;

/// Converts an amplitude ratio to decibels (`20·log10`).
pub fn ratio_to_db(ratio: f64) -> f64 {
    20.0 * ratio.abs().max(1e-300).log10()
}

/// Converts decibels to an amplitude ratio.
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Down-conversion gain in dB: the baseband fundamental of the
/// (differential) output envelope over the RF input amplitude.
///
/// `out_p`/`out_n` select the differential output (`out_n = None` for
/// single-ended).
pub fn conversion_gain_db(
    solution: &MultitimeSolution,
    out_p: usize,
    out_n: Option<usize>,
    rf_amplitude: f64,
) -> f64 {
    let out = differential_baseband_harmonic(solution, out_p, out_n, 1);
    ratio_to_db(out / rf_amplitude)
}

/// Magnitude of baseband harmonic `m` of the (differential) output
/// envelope.
pub fn differential_baseband_harmonic(
    solution: &MultitimeSolution,
    out_p: usize,
    out_n: Option<usize>,
    m: usize,
) -> f64 {
    let hp = solution.baseband_harmonic(out_p, m);
    match out_n {
        Some(n) => (hp - solution.baseband_harmonic(n, m)).abs(),
        None => hp.abs(),
    }
}

/// Harmonic distortion of order `m` in dBc: `|env_m| / |env_1|`.
pub fn hd_dbc(solution: &MultitimeSolution, out_p: usize, out_n: Option<usize>, m: usize) -> f64 {
    let fund = differential_baseband_harmonic(solution, out_p, out_n, 1);
    let harm = differential_baseband_harmonic(solution, out_p, out_n, m);
    ratio_to_db(harm / fund)
}

/// Total harmonic distortion (up to `max_harmonic`) as a ratio.
pub fn thd(
    solution: &MultitimeSolution,
    out_p: usize,
    out_n: Option<usize>,
    max_harmonic: usize,
) -> f64 {
    let fund = differential_baseband_harmonic(solution, out_p, out_n, 1);
    if fund == 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for m in 2..=max_harmonic {
        let h = differential_baseband_harmonic(solution, out_p, out_n, m);
        acc += h * h;
    }
    acc.sqrt() / fund
}

/// Power (V²) of a sampled periodic signal in a harmonic band
/// `[k_lo, k_hi]` (inclusive), from a one-sided spectrum.
pub fn band_power(samples: &[f64], k_lo: usize, k_hi: usize) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let spec = fft_real(samples);
    let half = n / 2;
    let mut acc = 0.0;
    for k in k_lo..=k_hi.min(half) {
        let scale = if k == 0 || (n.is_multiple_of(2) && k == half) {
            1.0 / n as f64
        } else {
            2.0 / n as f64
        };
        let a = spec[k].abs() * scale;
        // RMS power of a cosine of amplitude a is a²/2 (a² for DC).
        acc += if k == 0 { a * a } else { a * a / 2.0 };
    }
    acc
}

/// Adjacent-channel interference estimate in dBc: power of the envelope in
/// the band `(channel_harmonics, 2·channel_harmonics]` relative to
/// `[1, channel_harmonics]`. The paper's conclusion names ACI estimation as
/// a target application of the method.
pub fn aci_dbc(envelope: &[f64], channel_harmonics: usize) -> f64 {
    let main = band_power(envelope, 1, channel_harmonics);
    let adj = band_power(envelope, channel_harmonics + 1, 2 * channel_harmonics);
    10.0 * (adj / main.max(1e-300)).max(1e-300).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_mpde::{MultitimeGrid, MultitimeSolution};
    use std::f64::consts::PI;

    fn envelope_solution(env: impl Fn(f64) -> f64, n1: usize, n2: usize) -> MultitimeSolution {
        let grid = MultitimeGrid::new(n1, n2, 1e-6, 1e-3);
        let mut data = Vec::with_capacity(n1 * n2);
        for j in 0..n2 {
            for _i in 0..n1 {
                data.push(env(j as f64 / n2 as f64));
            }
        }
        MultitimeSolution::new(grid, 1, data)
    }

    #[test]
    fn db_roundtrip() {
        assert!((ratio_to_db(10.0) - 20.0).abs() < 1e-12);
        assert!((db_to_ratio(-6.0) - 0.5012).abs() < 1e-3);
        assert!((db_to_ratio(ratio_to_db(0.3)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn conversion_gain_of_known_envelope() {
        // envelope = 0.5·cos(2π·u): fundamental amplitude 0.5.
        let sol = envelope_solution(|u| 0.5 * (2.0 * PI * u).cos(), 4, 32);
        let g = conversion_gain_db(&sol, 0, None, 0.1);
        // 0.5 / 0.1 = 5× = ~14 dB.
        assert!((g - ratio_to_db(5.0)).abs() < 1e-6);
    }

    #[test]
    fn hd_of_distorted_envelope() {
        // env = cos + 0.1·cos(2·) → HD2 = −20 dBc.
        let sol = envelope_solution(|u| (2.0 * PI * u).cos() + 0.1 * (4.0 * PI * u).cos(), 4, 64);
        let hd2 = hd_dbc(&sol, 0, None, 2);
        assert!((hd2 + 20.0).abs() < 0.1, "HD2 = {hd2}");
        let t = thd(&sol, 0, None, 5);
        assert!((t - 0.1).abs() < 1e-3, "THD = {t}");
    }

    #[test]
    fn differential_doubles_amplitude() {
        let grid = MultitimeGrid::new(2, 16, 1e-6, 1e-3);
        let mut data = Vec::new();
        for j in 0..16 {
            for _i in 0..2 {
                let v = (2.0 * PI * j as f64 / 16.0).cos();
                data.push(v); // out_p
                data.push(-v); // out_n
            }
        }
        let sol = MultitimeSolution::new(grid, 2, data);
        let single = differential_baseband_harmonic(&sol, 0, None, 1);
        let diff = differential_baseband_harmonic(&sol, 0, Some(1), 1);
        assert!((diff - 2.0 * single).abs() < 1e-9);
    }

    #[test]
    fn band_power_parseval_slice() {
        // cos with amplitude 2: power = 2²/2 = 2 in harmonic 1.
        let samples: Vec<f64> = (0..64)
            .map(|k| 2.0 * (2.0 * PI * k as f64 / 64.0).cos())
            .collect();
        assert!((band_power(&samples, 1, 1) - 2.0).abs() < 1e-9);
        assert!(band_power(&samples, 2, 10) < 1e-12);
    }

    #[test]
    fn aci_detects_out_of_band_content() {
        // Main channel: harmonics 1..4. Adjacent leak at harmonic 6, −20 dB.
        let samples: Vec<f64> = (0..128)
            .map(|k| {
                let u = k as f64 / 128.0;
                (2.0 * PI * u).cos() + 0.1 * (2.0 * PI * 6.0 * u).cos()
            })
            .collect();
        let aci = aci_dbc(&samples, 4);
        assert!((aci + 20.0).abs() < 0.5, "ACI = {aci} dBc");
    }
}
