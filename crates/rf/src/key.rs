//! Quantised job keys for cross-batch solution memoisation.
//!
//! A sweep service that wants to serve a repeated request from a solution
//! store needs a stable key for "the same job". Structure is already
//! covered by [`PatternFingerprint`]; the *values* (amplitudes, tone
//! spacings, grid dimensions) are `f64`s that may arrive from a wire
//! protocol, a dashboard slider or a config file — textually different
//! spellings of the same physical request. The [`Quantizer`] collapses
//! values that agree to a configurable number of significant decimal
//! digits onto one bucket, and the [`JobKeyBuilder`] folds the quantised
//! parameters into a fingerprint-seeded FNV-1a hash.
//!
//! Quantisation is a *routing* choice, exactly like the fingerprints it
//! composes with: two requests that land in the same bucket are served the
//! same stored solution, so the digit count bounds how far a served answer
//! can sit from the requested parameters (default: 12 significant digits,
//! far below any physical tolerance in the paper's workloads, far above
//! f64 noise from wire round-trips).

use rfsim_numerics::sparse::PatternFingerprint;

/// Buckets `f64` parameter values by significant decimal digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    sig_digits: u8,
}

impl Default for Quantizer {
    fn default() -> Self {
        Quantizer::new(Self::DEFAULT_SIG_DIGITS)
    }
}

impl Quantizer {
    /// Default significant-digit budget: tight enough that physically
    /// distinct sweep parameters never merge, loose enough that a value's
    /// shortest-round-trip wire spelling re-quantises onto itself.
    pub const DEFAULT_SIG_DIGITS: u8 = 12;

    /// A quantiser keeping `sig_digits` significant decimal digits
    /// (clamped to `1..=17`).
    pub fn new(sig_digits: u8) -> Self {
        Quantizer {
            sig_digits: sig_digits.clamp(1, 17),
        }
    }

    /// The configured significant-digit count.
    pub fn sig_digits(&self) -> u8 {
        self.sig_digits
    }

    /// The canonical spelling of `v`'s bucket: scientific notation with
    /// `sig_digits` significant digits, with `-0` folded onto `0` and
    /// non-finite values spelled out. Two values quantise equal iff their
    /// canonical spellings match.
    pub fn canonical(&self, v: f64) -> String {
        if !v.is_finite() {
            return format!("{v}");
        }
        let v = if v == 0.0 { 0.0 } else { v };
        format!("{:.*e}", usize::from(self.sig_digits) - 1, v)
    }

    /// The bucket of `v` as a hashable token.
    pub fn bucket(&self, v: f64) -> u64 {
        fnv1a_bytes(FNV_OFFSET, self.canonical(v).as_bytes())
    }
}

/// The FNV-1a offset basis — the seed for [`fnv1a_bytes`] chains.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// One FNV-1a absorption step: folds `bytes` into the running hash `h`
/// (seed with [`FNV_OFFSET`]). Shared by the key builder and the serve
/// layer's result digests so the workspace carries one hash definition.
pub fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A stable identity for a memoised sweep job: a Jacobian-structure
/// fingerprint folded with quantised job parameters.
///
/// Like [`PatternFingerprint`], this is a routing key: a collision serves
/// a stored solution for a different request, so consumers that cannot
/// tolerate that (none of the current ones) must verify payload metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(u64);

impl JobKey {
    /// The raw hash value (diagnostics, wire encoding).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Accumulates a [`JobKey`] from a structure fingerprint and the job's
/// parameters. Push order matters and is part of the key's contract.
#[derive(Debug, Clone)]
pub struct JobKeyBuilder {
    h: u64,
    quantizer: Quantizer,
}

impl JobKeyBuilder {
    /// Starts a key from the job's Jacobian-structure fingerprint.
    pub fn new(fingerprint: PatternFingerprint, quantizer: Quantizer) -> Self {
        JobKeyBuilder {
            h: fnv1a_bytes(FNV_OFFSET, &fingerprint.as_u64().to_le_bytes()),
            quantizer,
        }
    }

    /// Starts a key with no structure fingerprint — for identities that
    /// *precede* a fingerprint, like the serve layer's per-family
    /// fingerprint-cache slots (family name + quantised operating point
    /// in, fingerprint out).
    pub fn unseeded(quantizer: Quantizer) -> Self {
        JobKeyBuilder {
            h: FNV_OFFSET,
            quantizer,
        }
    }

    /// Folds a raw integer token (grid dimension, backend discriminant).
    #[must_use]
    pub fn push_u64(mut self, v: u64) -> Self {
        self.h = fnv1a_bytes(self.h, &v.to_le_bytes());
        self
    }

    /// Folds a textual token (family name, backend label).
    #[must_use]
    pub fn push_str(mut self, s: &str) -> Self {
        self.h = fnv1a_bytes(self.h, &(s.len() as u64).to_le_bytes());
        self.h = fnv1a_bytes(self.h, s.as_bytes());
        self
    }

    /// Folds one quantised `f64` parameter.
    #[must_use]
    pub fn push_f64(mut self, v: f64) -> Self {
        let bucket = self.quantizer.bucket(v);
        self.h = fnv1a_bytes(self.h, &bucket.to_le_bytes());
        self
    }

    /// Folds a slice of quantised `f64` parameters (length included, so
    /// `[a, b] ++ [c]` never collides with `[a] ++ [b, c]`).
    #[must_use]
    pub fn push_f64s(mut self, vs: &[f64]) -> Self {
        self.h = fnv1a_bytes(self.h, &(vs.len() as u64).to_le_bytes());
        for &v in vs {
            self = self.push_f64(v);
        }
        self
    }

    /// The finished key.
    pub fn finish(self) -> JobKey {
        JobKey(self.h)
    }
}

/// Rendezvous (highest-random-weight) routing of a key onto one of
/// `shards` slots.
///
/// Every `(key, shard)` pair gets a deterministic FNV-1a weight and the
/// key lands on the shard with the highest weight. Unlike `key % shards`,
/// re-sharding moves a *minimal* key range: growing from `n` to `n + 1`
/// shards relocates only the keys whose new shard's weight beats their
/// old maximum — an expected `1 / (n + 1)` fraction — and every relocated
/// key moves *to* the new shard; keys between surviving shards never
/// reshuffle. The serve tier routes on this so each shard's caches stay
/// hot and private across deployments that resize the pool.
///
/// `shards == 0` is treated as 1 (a pool always has at least one shard).
/// Ties (vanishingly unlikely with 64-bit weights) break toward the lower
/// shard index, deterministically.
pub fn rendezvous_route(key: JobKey, shards: usize) -> usize {
    let shards = shards.max(1);
    let seed = fnv1a_bytes(FNV_OFFSET, &key.as_u64().to_le_bytes());
    let mut best = 0usize;
    let mut best_weight = 0u64;
    for shard in 0..shards {
        let weight = fnv1a_bytes(seed, &(shard as u64).to_le_bytes());
        if shard == 0 || weight > best_weight {
            best = shard;
            best_weight = weight;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_numerics::sparse::Triplets;

    fn fp(n: usize) -> PatternFingerprint {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        t.pattern_fingerprint()
    }

    #[test]
    fn quantizer_merges_wire_noise_and_splits_real_differences() {
        let q = Quantizer::default();
        // A shortest-round-trip spelling re-parses to the identical f64,
        // so its bucket is trivially stable.
        let v = 0.1234567890123456;
        let rt: f64 = format!("{v}").parse().expect("roundtrip");
        assert_eq!(q.bucket(v), q.bucket(rt));
        // Noise beyond 12 significant digits merges…
        assert_eq!(q.bucket(1.0), q.bucket(1.0 + 1e-13));
        // …while differences a dashboard could ask for stay distinct.
        assert_ne!(q.bucket(1.0), q.bucket(1.0 + 1e-9));
        assert_ne!(q.bucket(10e3), q.bucket(20e3));
        // Signed zero folds onto zero; sign otherwise matters.
        assert_eq!(q.bucket(0.0), q.bucket(-0.0));
        assert_ne!(q.bucket(0.5), q.bucket(-0.5));
    }

    #[test]
    fn quantizer_digit_budget_is_adjustable() {
        let coarse = Quantizer::new(3);
        assert_eq!(coarse.bucket(1.0001), coarse.bucket(1.0002));
        let fine = Quantizer::new(8);
        assert_ne!(fine.bucket(1.0001), fine.bucket(1.0002));
        // Clamped to a sane range.
        assert_eq!(Quantizer::new(0).sig_digits(), 1);
        assert_eq!(Quantizer::new(40).sig_digits(), 17);
    }

    #[test]
    fn job_keys_depend_on_every_component() {
        let q = Quantizer::default();
        let base = |f: PatternFingerprint| {
            JobKeyBuilder::new(f, q)
                .push_str("rc_lowpass")
                .push_u64(16)
                .push_f64s(&[0.1, 0.2])
                .finish()
        };
        assert_eq!(base(fp(3)), base(fp(3)));
        assert_ne!(base(fp(3)), base(fp(4)));
        let b = JobKeyBuilder::new(fp(3), q);
        assert_ne!(
            base(fp(3)),
            b.clone()
                .push_str("rc_lowpass")
                .push_u64(32)
                .push_f64s(&[0.1, 0.2])
                .finish()
        );
        assert_ne!(
            base(fp(3)),
            b.clone()
                .push_str("diode")
                .push_u64(16)
                .push_f64s(&[0.1, 0.2])
                .finish()
        );
        assert_ne!(
            base(fp(3)),
            b.push_str("rc_lowpass")
                .push_u64(16)
                .push_f64s(&[0.1, 0.3])
                .finish()
        );
    }

    #[test]
    fn rendezvous_routing_is_deterministic_and_covers_all_shards() {
        let q = Quantizer::default();
        let key_of = |i: u64| JobKeyBuilder::unseeded(q).push_u64(i).finish();
        let shards = 4;
        let mut seen = vec![0usize; shards];
        for i in 0..4096 {
            let k = key_of(i);
            let route = rendezvous_route(k, shards);
            assert_eq!(route, rendezvous_route(k, shards), "stable per key");
            assert!(route < shards);
            seen[route] += 1;
        }
        // FNV weights spread uniformly enough that no shard starves.
        for (shard, count) in seen.iter().enumerate() {
            assert!(*count > 4096 / shards / 4, "shard {shard} got {count}");
        }
        // Degenerate pool sizes collapse sanely.
        assert_eq!(rendezvous_route(key_of(7), 0), 0);
        assert_eq!(rendezvous_route(key_of(7), 1), 0);
    }

    #[test]
    fn rendezvous_resharding_moves_a_minimal_key_range() {
        let q = Quantizer::default();
        let keys: Vec<JobKey> = (0..4096u64)
            .map(|i| JobKeyBuilder::unseeded(q).push_u64(i).finish())
            .collect();
        for n in 1..8usize {
            let mut moved = 0usize;
            for &k in &keys {
                let before = rendezvous_route(k, n);
                let after = rendezvous_route(k, n + 1);
                if before != after {
                    // Every relocated key lands on the new shard only.
                    assert_eq!(after, n, "key may only move to the added shard");
                    moved += 1;
                }
            }
            // Expected movement is |keys| / (n + 1); allow 2x headroom.
            let expected = keys.len() / (n + 1);
            assert!(
                moved <= expected * 2,
                "grow {n}->{} moved {moved} keys (expected ~{expected})",
                n + 1
            );
            assert!(moved > 0, "growth must rebalance something");
        }
    }

    #[test]
    fn slice_lengths_are_part_of_the_key() {
        let q = Quantizer::default();
        let k1 = JobKeyBuilder::new(fp(2), q)
            .push_f64s(&[1.0, 2.0])
            .push_f64s(&[3.0])
            .finish();
        let k2 = JobKeyBuilder::new(fp(2), q)
            .push_f64s(&[1.0])
            .push_f64s(&[2.0, 3.0])
            .finish();
        assert_ne!(k1, k2);
    }
}
