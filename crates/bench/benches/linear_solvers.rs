//! Ablation: direct sparse LU vs GMRES+ILU(0) on a real MPDE Jacobian
//! (the paper used "iterative linear solution methods"; our default is
//! direct — this measures the trade).

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim_bench::paper::{comparison_grid, scaled_mixer};
use rfsim_circuit::newton::NewtonSystem;
use rfsim_mpde::fdtd::MpdeSystem;
use rfsim_numerics::krylov::{gmres, BlockJacobiPrecond, GmresOptions};
use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::sparse_lu::{LuOptions, Ordering, SparseLu};

fn bench_linear(c: &mut Criterion) {
    let mixer = scaled_mixer(10e6, 200.0);
    let grid = comparison_grid(&mixer, 24, 16);
    let sys = MpdeSystem::new(&mixer.circuit, grid, Default::default(), Default::default())
        .expect("system");
    let dim = sys.dim();
    let op =
        rfsim_circuit::dcop::dc_operating_point(&mixer.circuit, Default::default()).expect("dc");
    let mut x0 = Vec::with_capacity(dim);
    for _ in 0..grid.num_points() {
        x0.extend_from_slice(&op.solution);
    }
    let mut r = vec![0.0; dim];
    let mut jac = Triplets::with_capacity(dim, dim, 40 * dim);
    sys.residual_and_jacobian(&x0, &mut r, &mut jac);
    let csc = jac.to_csc();
    let csr = jac.to_csr();
    let rhs: Vec<f64> = r.iter().map(|v| -v).collect();

    let mut group = c.benchmark_group("mpde_jacobian_solve");
    group.sample_size(10);
    group.bench_function("sparse_lu_rcm", |b| {
        b.iter(|| {
            SparseLu::factor(&csc, LuOptions::default())
                .expect("factor")
                .solve(&rhs)
        })
    });
    group.bench_function("sparse_lu_natural", |b| {
        b.iter(|| {
            SparseLu::factor(
                &csc,
                LuOptions {
                    ordering: Ordering::Natural,
                    ..Default::default()
                },
            )
            .expect("factor")
            .solve(&rhs)
        })
    });
    // ILU(0) cannot factor MNA matrices (V-source rows have structurally
    // zero diagonals); the domain-appropriate preconditioner is block-Jacobi
    // over per-grid-point circuit blocks.
    let block = mixer.circuit.num_unknowns();
    group.bench_function("gmres_block_jacobi", |b| {
        b.iter(|| {
            let pre = BlockJacobiPrecond::new(&csr, block).expect("block jacobi");
            gmres(
                &csr,
                &pre,
                &rhs,
                &vec![0.0; dim],
                GmresOptions {
                    rtol: 1e-9,
                    restart: 80,
                    max_iters: 4000,
                    ..Default::default()
                },
            )
            .expect("gmres")
        })
    });
    // The per-Newton-iteration direct cost after the symbolic split:
    // numeric refactorisation + triangular solves, no ordering/reach/pivot.
    group.bench_function("lu_refactor_and_solve", |b| {
        let mut lu = SparseLu::factor(&csc, LuOptions::default()).expect("factor");
        b.iter(|| {
            lu.refactor_in_place(&csc).expect("refactor");
            lu.solve(&rhs)
        })
    });
    group.bench_function("lu_resolve_only", |b| {
        let lu = SparseLu::factor(&csc, LuOptions::default()).expect("factor");
        b.iter(|| lu.solve(&rhs))
    });
    group.finish();
}

criterion_group!(benches, bench_linear);
criterion_main!(benches);
