//! E7 (criterion form): MPDE grid solve vs single-time shooting at a fixed
//! modest disparity. The full disparity sweep is the `speedup_table` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim_bench::paper::scaled_mixer;
use rfsim_mpde::solver::{solve_mpde, MpdeOptions};
use rfsim_shooting::{difference_period_steps, shooting_pss, ShootingOptions};

fn bench_methods(c: &mut Criterion) {
    let mixer = scaled_mixer(10e6, 100.0);
    let mut group = c.benchmark_group("steady_state_methods");
    group.sample_size(10);

    group.bench_function("mpde_40x30", |b| {
        b.iter(|| {
            solve_mpde(
                &mixer.circuit,
                mixer.params.t1_period(),
                mixer.params.t2_period(),
                MpdeOptions::default(),
            )
            .expect("mpde")
        })
    });

    let steps = difference_period_steps(mixer.params.f_lo, mixer.params.fd, 10);
    group.bench_function("shooting_10_per_lo", |b| {
        b.iter(|| {
            shooting_pss(
                &mixer.circuit,
                mixer.params.t2_period(),
                None,
                ShootingOptions {
                    steps_per_period: steps,
                    max_outer: 10,
                    ..Default::default()
                },
            )
            .expect("shooting")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
