//! Microbenchmarks: device evaluation and full-circuit assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim_circuits::{BalancedMixer, BalancedMixerParams};
use rfsim_numerics::sparse::Triplets;

fn bench_assembly(c: &mut Criterion) {
    let mixer = BalancedMixer::build(BalancedMixerParams::default()).expect("build");
    let n = mixer.circuit.num_unknowns();
    let x = vec![0.5; n];
    let mut f = vec![0.0; n];
    let mut q = vec![0.0; n];

    c.bench_function("circuit_eval_f_residual_only", |b| {
        b.iter(|| mixer.circuit.eval_f(&x, &mut f, None))
    });
    c.bench_function("circuit_eval_f_with_jacobian", |b| {
        let mut jac = Triplets::with_capacity(n, n, 16 * n);
        b.iter(|| {
            jac.clear();
            mixer.circuit.eval_f(&x, &mut f, Some(&mut jac));
        })
    });
    c.bench_function("circuit_eval_q_with_jacobian", |b| {
        let mut jac = Triplets::with_capacity(n, n, 16 * n);
        b.iter(|| {
            jac.clear();
            mixer.circuit.eval_q(&x, &mut q, Some(&mut jac));
        })
    });
    c.bench_function("circuit_eval_b_bivariate", |b| {
        let mut bvec = vec![0.0; n];
        b.iter(|| mixer.circuit.eval_b_bi(1e-9, 1e-5, &mut bvec).expect("bi"))
    });
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
