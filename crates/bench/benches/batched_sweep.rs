//! The batched multi-topology sweep benchmark behind `BENCH_pr2.json`.
//!
//! * `batched_sweep/sequential_per_topology` — the status-quo baseline:
//!   four circuit families traced one `amplitude_sweep` at a time, each
//!   paying its own cold workspace (full symbolic analysis) and its own
//!   cold first point (DC-replicate Newton).
//! * `batched_sweep/engine_batch_cold` — the same four families through a
//!   freshly constructed [`SweepEngine`]: fingerprint grouping plus
//!   warm-start chaining across same-structure jobs.
//! * `batched_sweep/engine_batch_warm` — the engine in its steady state (a
//!   long-lived engine whose fingerprint-keyed workspaces survive between
//!   batches), the configuration a sweep service actually runs.
//! * `mixed_stream/single_workspace_thrash` vs
//!   `mixed_stream/fingerprint_cache` — an interleaved stream of operating
//!   points alternating between two Jacobian structures: one workspace
//!   thrashes (full re-analysis at every switch), the fingerprint cache
//!   keeps both structures warm.
//!
//! On multi-core hosts the engine additionally spreads topology groups
//! across its worker pool; the committed numbers from the 1-core container
//! isolate the cache + chaining effect.

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim_circuit::newton::LinearSolverWorkspace;
use rfsim_circuit::{BiWaveform, Circuit, CircuitBuilder, Envelope, Result, GROUND};
use rfsim_circuits::{BalancedMixer, BalancedMixerParams};
use rfsim_mpde::solver::{solve_mpde_with_workspace, MpdeOptions};
use rfsim_rf::sweep::{amplitude_sweep, MpdeSweepJob, SweepEngine};

const F_LO: f64 = 10e6;
const DISPARITY: f64 = 100.0;
const AMPS: [f64; 3] = [0.02, 0.05, 0.08];

fn mixer_params(rf_amplitude: f64, rd: f64) -> BalancedMixerParams {
    BalancedMixerParams {
        f_lo: F_LO,
        fd: F_LO / DISPARITY,
        rf_bits: vec![],
        rf_amplitude,
        rd,
        ..Default::default()
    }
}

/// Balanced-mixer family: one topology, `rd` selects the variant.
fn mixer_family(rd: f64) -> impl Fn(f64) -> Result<Circuit> + Send + Sync + Clone {
    move |a: f64| Ok(BalancedMixer::build(mixer_params(a, rd))?.circuit)
}

/// Sheared-RC family: a second, much smaller topology in the mix.
fn rc_family() -> impl Fn(f64) -> Result<Circuit> + Send + Sync + Clone {
    let params = mixer_params(0.05, 1e3);
    let (t1, _) = (params.t1_period(), params.t2_period());
    move |a: f64| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource(
            "VRF",
            inp,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: a,
                k: 1,
                f1: 1.0 / t1,
                fd: F_LO / DISPARITY,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )?;
        b.resistor("R1", inp, out, 1e3)?;
        b.capacitor("C1", out, GROUND, 3e-12)?;
        b.build()
    }
}

fn grid_options() -> MpdeOptions {
    MpdeOptions {
        n1: 24,
        n2: 12,
        ..Default::default()
    }
}

/// The 4-topology mixed batch: three mixer variants (one shared Jacobian
/// structure) plus the RC stage (a second structure).
fn batch_jobs() -> Vec<MpdeSweepJob> {
    let params = mixer_params(0.05, 1e3);
    let (t1, t2) = (params.t1_period(), params.t2_period());
    let mut jobs: Vec<MpdeSweepJob> = [0.95e3, 1.0e3, 1.05e3]
        .iter()
        .map(|&rd| {
            MpdeSweepJob::new(
                format!("mixer-rd{rd}"),
                AMPS.to_vec(),
                t1,
                t2,
                grid_options(),
                mixer_family(rd),
            )
        })
        .collect();
    jobs.push(MpdeSweepJob::new(
        "rc-stage",
        AMPS.to_vec(),
        t1,
        t2,
        grid_options(),
        rc_family(),
    ));
    jobs
}

fn bench_batched_sweep(c: &mut Criterion) {
    let params = mixer_params(0.05, 1e3);
    let (t1, t2) = (params.t1_period(), params.t2_period());
    let mut group = c.benchmark_group("batched_sweep");
    group.sample_size(10);

    group.bench_function("sequential_per_topology", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for rd in [0.95e3, 1.0e3, 1.05e3] {
                let points = amplitude_sweep(&AMPS, t1, t2, grid_options(), mixer_family(rd))
                    .expect("mixer sweep");
                total += points.len();
            }
            total += amplitude_sweep(&AMPS, t1, t2, grid_options(), rc_family())
                .expect("rc sweep")
                .len();
            assert_eq!(total, 4 * AMPS.len());
            total
        })
    });

    let jobs = batch_jobs();
    group.bench_function("engine_batch_cold", |b| {
        b.iter(|| {
            let engine = SweepEngine::new();
            let results = engine.run_mpde_batch(&jobs);
            results
                .iter()
                .map(|r| r.as_ref().expect("job converges").len())
                .sum::<usize>()
        })
    });

    group.bench_function("engine_batch_warm", |b| {
        let engine = SweepEngine::new();
        // Prime the fingerprint-keyed cache: the steady state of a
        // long-lived sweep service.
        let _ = engine.run_mpde_batch(&jobs);
        b.iter(|| {
            let results = engine.run_mpde_batch(&jobs);
            results
                .iter()
                .map(|r| r.as_ref().expect("job converges").len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_mixed_stream(c: &mut Criterion) {
    let params = mixer_params(0.05, 1e3);
    let (t1, t2) = (params.t1_period(), params.t2_period());
    // An interleaved stream of operating points: mixer, rc, mixer, rc, …
    // encoded in the sweep value's sign (negative → RC at |v|).
    let stream: Vec<f64> = vec![0.02, -0.02, 0.05, -0.05, 0.08, -0.08];
    let make_mixed = {
        let mixer = mixer_family(1e3);
        let rc = rc_family();
        move |v: f64| {
            if v >= 0.0 {
                mixer(v)
            } else {
                rc(-v)
            }
        }
    };

    let mut group = c.benchmark_group("mixed_stream");
    group.sample_size(10);

    group.bench_function("single_workspace_thrash", |b| {
        // The pre-engine behaviour: one workspace through an alternating
        // stream rebuilds its entire structure at every topology switch.
        let make = make_mixed.clone();
        b.iter(|| {
            let mut ws = LinearSolverWorkspace::new();
            let mut n = 0usize;
            for &v in &stream {
                let circuit = make(v).expect("build");
                let sol = solve_mpde_with_workspace(&circuit, t1, t2, grid_options(), &mut ws)
                    .expect("solve");
                n += sol.stats.system_size;
            }
            n
        })
    });

    group.bench_function("fingerprint_cache", |b| {
        // The fixed amplitude_sweep: transparent re-keying keeps one
        // warmed workspace per structure.
        let make = make_mixed.clone();
        b.iter(|| {
            let points =
                amplitude_sweep(&stream, t1, t2, grid_options(), &make).expect("mixed sweep");
            assert_eq!(points.len(), stream.len());
            points.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batched_sweep, bench_mixed_stream);
criterion_main!(benches);
