//! The symbolic-reuse benchmark: factor-once / refactor-many on the
//! scaled-mixer MPDE Jacobian, plus the workspace-level wins it unlocks.
//!
//! * `factor_full` vs `refactor_numeric` — a full Gilbert–Peierls
//!   factorisation (RCM + DFS reach + pivot search) against the
//!   numeric-only `SparseLu::refactor_in_place` on the same matrix: the
//!   per-Newton-iteration cost before and after this optimisation.
//! * `to_csc_compress` vs `csc_assembly_scatter` — triplet compression from
//!   scratch against the cached slot-map scatter.
//! * `transient_mixer` / `mpde_solve_cold` / `mpde_solve_warm` — end-to-end
//!   paths whose Newton iterations ride the persistent
//!   [`rfsim_circuit::newton::LinearSolverWorkspace`]; the warm variant
//!   additionally reuses it across calls.

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim_bench::paper::{comparison_grid, scaled_mixer};
use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonSystem};
use rfsim_circuit::transient::{transient, Integrator, TransientOptions};
use rfsim_mpde::fdtd::MpdeSystem;
use rfsim_mpde::solver::{solve_mpde, solve_mpde_with_workspace, MpdeOptions};
use rfsim_numerics::sparse::{CscAssembly, Triplets};
use rfsim_numerics::sparse_lu::{LuOptions, SparseLu};

fn mpde_jacobian(n1: usize, n2: usize) -> Triplets {
    let mixer = scaled_mixer(10e6, 200.0);
    let grid = comparison_grid(&mixer, n1, n2);
    let sys = MpdeSystem::new(&mixer.circuit, grid, Default::default(), Default::default())
        .expect("system");
    let dim = sys.dim();
    let op =
        rfsim_circuit::dcop::dc_operating_point(&mixer.circuit, Default::default()).expect("dc");
    let mut x0 = Vec::with_capacity(dim);
    for _ in 0..grid.num_points() {
        x0.extend_from_slice(&op.solution);
    }
    let mut r = vec![0.0; dim];
    let mut jac = Triplets::with_capacity(dim, dim, 40 * dim);
    sys.residual_and_jacobian(&x0, &mut r, &mut jac);
    jac
}

fn bench_factor_vs_refactor(c: &mut Criterion) {
    let jac = mpde_jacobian(24, 16);
    let csc = jac.to_csc();
    let mut group = c.benchmark_group("mpde_jacobian_refactor");
    group.sample_size(10);
    group.bench_function("factor_full", |b| {
        b.iter(|| SparseLu::factor(&csc, LuOptions::default()).expect("factor"))
    });
    group.bench_function("refactor_numeric", |b| {
        let mut lu = SparseLu::factor(&csc, LuOptions::default()).expect("factor");
        b.iter(|| lu.refactor_in_place(&csc).expect("refactor"))
    });
    group.finish();
}

fn bench_assembly(c: &mut Criterion) {
    let jac = mpde_jacobian(24, 16);
    let mut group = c.benchmark_group("mpde_jacobian_assembly");
    group.sample_size(10);
    group.bench_function("to_csc_compress", |b| b.iter(|| jac.to_csc()));
    group.bench_function("csc_assembly_scatter", |b| {
        let asm = CscAssembly::new(&jac);
        let mut csc = asm.zero_matrix();
        b.iter(|| assert!(asm.scatter(&jac, &mut csc)))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mixer = scaled_mixer(10e6, 100.0);
    let mut group = c.benchmark_group("newton_hot_paths");
    group.sample_size(10);
    group.bench_function("transient_mixer", |b| {
        b.iter(|| {
            transient(
                &mixer.circuit,
                TransientOptions {
                    t_stop: 4.0 * mixer.params.t1_period(),
                    dt_init: mixer.params.t1_period() / 50.0,
                    dt_max: mixer.params.t1_period() / 25.0,
                    integrator: Integrator::Trapezoidal,
                    ..Default::default()
                },
            )
            .expect("transient")
        })
    });
    let opts = MpdeOptions {
        n1: 24,
        n2: 12,
        ..Default::default()
    };
    group.bench_function("mpde_solve_cold", |b| {
        b.iter(|| {
            solve_mpde(
                &mixer.circuit,
                mixer.params.t1_period(),
                mixer.params.t2_period(),
                opts.clone(),
            )
            .expect("mpde")
        })
    });
    group.bench_function("mpde_solve_warm", |b| {
        let mut ws = LinearSolverWorkspace::new();
        // Prime the workspace so the measurement shows the steady state of
        // a warm-started sweep.
        solve_mpde_with_workspace(
            &mixer.circuit,
            mixer.params.t1_period(),
            mixer.params.t2_period(),
            opts.clone(),
            &mut ws,
        )
        .expect("prime");
        b.iter(|| {
            solve_mpde_with_workspace(
                &mixer.circuit,
                mixer.params.t1_period(),
                mixer.params.t2_period(),
                opts.clone(),
                &mut ws,
            )
            .expect("mpde")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_factor_vs_refactor,
    bench_assembly,
    bench_end_to_end
);
criterion_main!(benches);
