//! The symbolic-reuse benchmark: factor-once / refactor-many on the
//! scaled-mixer MPDE Jacobian, plus the workspace-level wins it unlocks.
//!
//! * `factor_full` vs `refactor_numeric` — a full Gilbert–Peierls
//!   factorisation (RCM + DFS reach + pivot search) against the
//!   numeric-only `SparseLu::refactor_in_place` on the same matrix: the
//!   per-Newton-iteration cost before and after this optimisation.
//! * `to_csc_compress` vs `csc_assembly_scatter` — triplet compression from
//!   scratch against the cached slot-map scatter.
//! * `transient_mixer` / `mpde_solve_cold` / `mpde_solve_warm` — end-to-end
//!   paths whose Newton iterations ride the persistent
//!   [`rfsim_circuit::newton::LinearSolverWorkspace`]; the warm variant
//!   additionally reuses it across calls.
//! * `drifting_operating_point/*` — a pivot-stressing value sequence
//!   (every refresh kills the current pivot entry of one block's leading
//!   column): `restricted_pivot` repairs in-pattern; `full_fallback`
//!   disables the repair so every detected kill pays a full
//!   re-factorisation — the cost the repair avoids (not the pre-PR-3
//!   code, whose absolute detection would have silently accepted the
//!   tiny pivots). The in-pattern hit rate vs full-fallback rate prints
//!   alongside the wall times (and is gated in CI by `bench_gate`).

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim_bench::gate::{drift_scenario, drift_sequence, mpde_jacobian, DRIFT_STEPS};
use rfsim_circuit::newton::LinearSolverWorkspace;
use rfsim_circuit::transient::{transient, Integrator, TransientOptions};
use rfsim_mpde::solver::{solve_mpde, solve_mpde_with_workspace, MpdeOptions};
use rfsim_numerics::sparse::CscAssembly;
use rfsim_numerics::sparse_lu::{LuOptions, SparseLu};

use rfsim_bench::paper::scaled_mixer;

fn bench_factor_vs_refactor(c: &mut Criterion) {
    let jac = mpde_jacobian(24, 16);
    let csc = jac.to_csc();
    let mut group = c.benchmark_group("mpde_jacobian_refactor");
    group.sample_size(10);
    group.bench_function("factor_full", |b| {
        b.iter(|| SparseLu::factor(&csc, LuOptions::default()).expect("factor"))
    });
    group.bench_function("refactor_numeric", |b| {
        let mut lu = SparseLu::factor(&csc, LuOptions::default()).expect("factor");
        b.iter(|| lu.refactor_in_place(&csc).expect("refactor"))
    });
    group.finish();
}

fn bench_assembly(c: &mut Criterion) {
    let jac = mpde_jacobian(24, 16);
    let mut group = c.benchmark_group("mpde_jacobian_assembly");
    group.sample_size(10);
    group.bench_function("to_csc_compress", |b| b.iter(|| jac.to_csc()));
    group.bench_function("csc_assembly_scatter", |b| {
        let asm = CscAssembly::new(&jac);
        let mut csc = asm.zero_matrix();
        b.iter(|| assert!(asm.scatter(&jac, &mut csc)))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mixer = scaled_mixer(10e6, 100.0);
    let mut group = c.benchmark_group("newton_hot_paths");
    group.sample_size(10);
    group.bench_function("transient_mixer", |b| {
        b.iter(|| {
            transient(
                &mixer.circuit,
                TransientOptions {
                    t_stop: 4.0 * mixer.params.t1_period(),
                    dt_init: mixer.params.t1_period() / 50.0,
                    dt_max: mixer.params.t1_period() / 25.0,
                    integrator: Integrator::Trapezoidal,
                    ..Default::default()
                },
            )
            .expect("transient")
        })
    });
    let opts = MpdeOptions {
        n1: 24,
        n2: 12,
        ..Default::default()
    };
    group.bench_function("mpde_solve_cold", |b| {
        b.iter(|| {
            solve_mpde(
                &mixer.circuit,
                mixer.params.t1_period(),
                mixer.params.t2_period(),
                opts.clone(),
            )
            .expect("mpde")
        })
    });
    group.bench_function("mpde_solve_warm", |b| {
        let mut ws = LinearSolverWorkspace::new();
        // Prime the workspace so the measurement shows the steady state of
        // a warm-started sweep.
        solve_mpde_with_workspace(
            &mixer.circuit,
            mixer.params.t1_period(),
            mixer.params.t2_period(),
            opts.clone(),
            &mut ws,
        )
        .expect("prime");
        b.iter(|| {
            solve_mpde_with_workspace(
                &mixer.circuit,
                mixer.params.t1_period(),
                mixer.params.t2_period(),
                opts.clone(),
                &mut ws,
            )
            .expect("mpde")
        })
    });
    group.finish();
}

fn bench_drifting_operating_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("drifting_operating_point");
    group.sample_size(10);
    group.bench_function("restricted_pivot", |b| {
        b.iter(|| {
            let (repairs, _) = drift_sequence(true);
            assert!(
                repairs * 10 >= DRIFT_STEPS * 9,
                "drift left the pattern: {repairs}/{DRIFT_STEPS} in-pattern"
            );
            repairs
        })
    });
    group.bench_function("full_fallback", |b| b.iter(|| drift_sequence(false)));
    group.finish();
    let outcome = drift_scenario(3);
    eprintln!(
        "drifting_operating_point: {} pivot-stress refreshes/sequence, \
         in-pattern hit rate {:.0}%, full-fallback rate {:.0}%, \
         restricted {:.2} ms vs full-fallback {:.2} ms ({:.2}x)",
        outcome.stressed_refreshes / 3,
        100.0 * outcome.hit_rate(),
        100.0 * outcome.fallback_rate(),
        outcome.restricted_ns / 1e6,
        outcome.fallback_ns / 1e6,
        outcome.fallback_ns / outcome.restricted_ns,
    );
}

criterion_group!(
    benches,
    bench_factor_vs_refactor,
    bench_assembly,
    bench_end_to_end,
    bench_drifting_operating_point
);
criterion_main!(benches);
