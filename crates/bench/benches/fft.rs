//! Microbenchmarks: FFT kernels (radix-2 vs Bluestein) and the single-bin
//! extractor used for gain/distortion measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfsim_numerics::fft::{fft, goertzel, Complex};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [64usize, 256, 1024, 30, 300] {
        let x: Vec<Complex> = (0..n)
            .map(|k| Complex::new((k as f64 * 0.37).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| b.iter(|| fft(x)));
    }
    group.finish();

    let samples: Vec<f64> = (0..1200).map(|k| (k as f64 * 0.01).sin()).collect();
    c.bench_function("goertzel_harmonic_extraction", |b| {
        b.iter(|| goertzel(&samples, 3))
    });
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
