//! Ablation: differentiation schemes and initial-guess strategies for the
//! MPDE solve (the DESIGN.md design-choice benches).

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim_bench::paper::scaled_mixer;
use rfsim_mpde::solver::{solve_mpde, InitialGuess, MpdeOptions};
use rfsim_numerics::diff::DiffScheme;

fn bench_schemes(c: &mut Criterion) {
    let mixer = scaled_mixer(10e6, 200.0);
    let mut group = c.benchmark_group("mpde_ablations");
    group.sample_size(10);

    for (name, s1, s2) in [
        (
            "be_be",
            DiffScheme::BackwardEuler,
            DiffScheme::BackwardEuler,
        ),
        ("bdf2_be", DiffScheme::Bdf2, DiffScheme::BackwardEuler),
        (
            "central_central",
            DiffScheme::Central2,
            DiffScheme::Central2,
        ),
    ] {
        group.bench_function(format!("scheme_{name}"), |b| {
            b.iter(|| {
                solve_mpde(
                    &mixer.circuit,
                    mixer.params.t1_period(),
                    mixer.params.t2_period(),
                    MpdeOptions {
                        n1: 24,
                        n2: 12,
                        scheme1: s1,
                        scheme2: s2,
                        ..Default::default()
                    },
                )
                .expect("solve")
            })
        });
    }

    for (name, guess) in [
        ("guess_dc", InitialGuess::DcReplicate),
        (
            "guess_envelope",
            InitialGuess::EnvelopeFollowing { sweeps: 1 },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                solve_mpde(
                    &mixer.circuit,
                    mixer.params.t1_period(),
                    mixer.params.t2_period(),
                    MpdeOptions {
                        n1: 24,
                        n2: 12,
                        initial_guess: guess.clone(),
                        ..Default::default()
                    },
                )
                .expect("solve")
            })
        });
    }

    for (name, reuse) in [
        ("full_newton", 0usize),
        ("chord_newton_2", 2),
        ("chord_newton_4", 4),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                solve_mpde(
                    &mixer.circuit,
                    mixer.params.t1_period(),
                    mixer.params.t2_period(),
                    MpdeOptions {
                        n1: 24,
                        n2: 12,
                        newton: rfsim_circuit::newton::NewtonOptions {
                            jacobian_reuse: reuse,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                )
                .expect("solve")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
