//! CSV/console output helpers shared by the figure binaries.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Directory where figure data lands (created on demand).
pub fn out_dir() -> PathBuf {
    let p = PathBuf::from("target/repro");
    let _ = fs::create_dir_all(&p);
    p
}

/// Writes a CSV file with a header row; returns the path written.
pub fn write_csv(
    name: &str,
    header: &str,
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> std::io::Result<PathBuf> {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.9e}")).collect();
        writeln!(f, "{}", line.join(","))?;
    }
    Ok(path)
}

/// Writes a surface (row-major `[j][i]`) as CSV with t1/t2 coordinates.
pub fn write_surface_csv(
    name: &str,
    surface: &[f64],
    n1: usize,
    n2: usize,
    t1_period: f64,
    t2_period: f64,
) -> std::io::Result<PathBuf> {
    let rows = (0..n2).flat_map(move |j| {
        let surface = surface.to_vec();
        (0..n1)
            .map(move |i| {
                vec![
                    t1_period * i as f64 / n1 as f64,
                    t2_period * j as f64 / n2 as f64,
                    surface[j * n1 + i],
                ]
            })
            .collect::<Vec<_>>()
    });
    write_csv(name, "t1,t2,value", rows)
}

/// Prints an ASCII preview of a surface for terminal inspection.
pub fn ascii_surface(surface: &[f64], n1: usize, n2: usize, max_rows: usize, max_cols: usize) {
    let lo = surface.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = surface.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let chars = b" .:-=+*#%@";
    let rows = n2.min(max_rows);
    let cols = n1.min(max_cols);
    for jr in 0..rows {
        let j = jr * n2 / rows;
        let mut line = String::new();
        for ir in 0..cols {
            let i = ir * n1 / cols;
            let v = surface[j * n1 + i];
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            let idx = ((t * 9.0).round() as usize).min(9);
            line.push(chars[idx] as char);
        }
        println!("{line}");
    }
    println!("range: [{lo:.4}, {hi:.4}]");
}

/// Checks a path exists (test helper).
pub fn exists(p: &Path) -> bool {
    p.exists()
}
