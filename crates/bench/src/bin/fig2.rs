//! Figure 2: the *sheared* bivariate representation
//! `ẑ2(t1,t2) = ẑs(f1·t1, f1·t1 − fd·t2)` of the same ideal mixing example.
//! The second axis is now the difference-frequency time scale spanning
//! Td = 0.1 ms: the 10 kHz difference tone is explicit, while compactness
//! of representation is untouched (the paper's key observation).

use rfsim_bench::output::{ascii_surface, write_surface_csv};
use rfsim_mpde::shear::IdealMixing;

fn main() {
    let m = IdealMixing::paper_example();
    let shear = m.shear();
    let (n1, n2) = (40, 40);
    let surface = m.sample_zhat2(n1, n2);
    let path = write_surface_csv(
        "fig2_zhat2.csv",
        &surface,
        n1,
        n2,
        shear.t1_period(),
        shear.t2_period(),
    )
    .expect("write CSV");
    println!(
        "Figure 2: ẑ2(t1,t2) on [0,T1]x[0,Td], T1 = 1 ns, Td = {} ms",
        shear.t2_period() * 1e3
    );
    ascii_surface(&surface, n1, n2, 20, 60);
    println!("CSV: {}", path.display());
    // Diagnostic: the t2 axis now carries exactly one difference-tone cycle.
    let col: Vec<f64> = (0..n2).map(|j| surface[j * n1]).collect();
    let h1 = rfsim_numerics::fft::harmonic_amplitude(&col, 1);
    println!(
        "t2-axis fundamental amplitude {:.4} (difference tone, expected 1.0)",
        h1
    );
    // And the diagonal identity still holds.
    let t = 3.7e-9;
    println!(
        "diagonal check: ẑ2(t,t) − z(t) = {:.2e} at t = {t} s",
        m.zhat2(t, t) - m.z(t)
    );
}
