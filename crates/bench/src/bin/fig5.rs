//! Figure 5: multitime voltage at the MOSFET (common) sources of the
//! balanced mixer — the sharp waveforms created by the frequency doubler,
//! the paper's showcase for time-domain (vs Fourier) representations.

use rfsim_bench::output::{ascii_surface, write_surface_csv};
use rfsim_bench::paper::solve_paper_mixer;
use rfsim_hb::spectrum::harmonics_for_energy_fraction;

fn main() {
    let (mixer, sol, _) = solve_paper_mixer(vec![true, false, true, true]);
    let (n1, n2) = sol.grid.shape();
    let surf = sol.solution.surface(mixer.common);
    let path = write_surface_csv(
        "fig5_source_voltage.csv",
        &surf,
        n1,
        n2,
        sol.grid.t1_period(),
        sol.grid.t2_period(),
    )
    .expect("write CSV");
    println!("Figure 5: voltage at the MOSFET common-source node");
    println!("(doubled-frequency waveform: two peaks per LO period)\n");
    ascii_surface(&surf, n1, n2, 24, 60);
    println!("CSV: {}", path.display());

    // Sharpness diagnostics along the fast axis.
    let row = sol.solution.t1_slice(mixer.common, 0);
    let k99 = harmonics_for_energy_fraction(&row, 0.999);
    let h1 = rfsim_numerics::fft::harmonic_amplitude(&row, 1);
    let h2 = rfsim_numerics::fft::harmonic_amplitude(&row, 2);
    println!("\nfast-axis harmonics: |f_LO| = {h1:.4}, |2·f_LO| = {h2:.4} (doubling: h2 ≫ h1)");
    println!("harmonics for 99.9% of AC energy: {k99} (sharp waveform ⇒ slow Fourier decay)");
}
