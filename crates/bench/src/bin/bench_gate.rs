//! The CI bench-regression gate.
//!
//! Measures the refactor, batched-sweep, solution-store, engine-memo,
//! build-free-submit, cancel-latency, recovery-ladder,
//! sharded-throughput and telemetry-overhead scenarios in-process,
//! writes the results as `BENCH_pr9.json`, and compares the
//! machine-portable speedup *ratios* against the committed baseline JSON
//! within a relative tolerance (see `docs/benching.md` for the schema
//! and the rationale). Exit code 0 = every ratio within tolerance;
//! 1 = regression.
//!
//! ```text
//! cargo run --release -p rfsim-bench --bin bench_gate -- \
//!     --baseline BENCH_pr8.json --out BENCH_pr9.json --tolerance 0.25
//! ```

use std::io::Write;
use std::process::ExitCode;

use rfsim_bench::gate::{
    cancel_latency_scenario, drift_scenario, engine_memo_scenario, evaluate,
    keyless_submit_scenario, memo_roundtrip, mpde_warm_vs_cold, netlist_submit_scenario,
    recovery_ladder_scenario, refactor_vs_full, sharded_throughput_scenario,
    telemetry_overhead_scenario, GateCheck, Json,
};

struct Args {
    baseline: String,
    out: String,
    tolerance: f64,
    reps: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: "BENCH_pr9.json".into(),
        out: "BENCH_pr10.json".into(),
        // Cross-machine reproducibility of the micro ratios is ~±20%
        // (measured by re-running a pinned build against a baseline
        // recorded on a different container), so a tighter band is
        // flake, not detection. The hard floors carry the
        // machine-portable guarantees.
        tolerance: 0.25,
        reps: 7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = value("--baseline"),
            "--out" => args.out = value("--out"),
            "--tolerance" => args.tolerance = value("--tolerance").parse().expect("tolerance"),
            "--reps" => args.reps = value("--reps").parse().expect("reps"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    println!("bench_gate: measuring ({} reps per scenario)…", args.reps);
    let (refactor_ns, full_factor_ns) = refactor_vs_full(args.reps);
    let refactor_speedup = full_factor_ns / refactor_ns;
    println!(
        "  refactor {refactor_ns:.0} ns vs full factor {full_factor_ns:.0} ns \
         → {refactor_speedup:.2}x"
    );

    let drift = drift_scenario(args.reps);
    let drift_speedup = drift.fallback_ns / drift.restricted_ns;
    println!(
        "  drift: restricted {:.0} ns vs full-fallback {:.0} ns → {:.2}x, \
         hit rate {:.0}%, fallback rate {:.0}%",
        drift.restricted_ns,
        drift.fallback_ns,
        drift_speedup,
        100.0 * drift.hit_rate(),
        100.0 * drift.fallback_rate()
    );

    let (warm_ns, cold_ns) = mpde_warm_vs_cold(args.reps);
    let warm_speedup = cold_ns / warm_ns;
    println!("  mpde warm {warm_ns:.0} ns vs cold {cold_ns:.0} ns → {warm_speedup:.2}x");

    let memo = memo_roundtrip(args.reps);
    println!(
        "  serve: fresh grid {:.0} ns vs memo hit {:.0} ns → {:.1}x, \
         {} memo hits, bit-identical: {}",
        memo.fresh_ns,
        memo.memo_ns,
        memo.speedup(),
        memo.memo_hits,
        memo.bit_identical,
    );

    let netlist = netlist_submit_scenario(args.reps);
    println!(
        "  netlist: cold submit {:.0} ns vs memo hit {:.0} ns → {:.1}x, \
         {} memo hits, bit-identical: {}",
        netlist.fresh_ns,
        netlist.memo_ns,
        netlist.speedup(),
        netlist.memo_hits,
        netlist.bit_identical,
    );

    let engine_memo = engine_memo_scenario(args.reps);
    println!(
        "  engine: fresh batch {:.0} ns vs memo hit {:.0} ns → {:.1}x, \
         {} memo hits, bit-identical: {}",
        engine_memo.fresh_ns,
        engine_memo.memo_ns,
        engine_memo.speedup(),
        engine_memo.memo_hits,
        engine_memo.bit_identical,
    );

    let keyless = keyless_submit_scenario(args.reps);
    println!(
        "  keyless submit: memo submit {:.0} ns, {} builder calls during \
         {} memo hits ({} fingerprint-cache hits) → build-free: {}",
        keyless.memo_submit_ns,
        keyless.builder_calls_during_memo,
        keyless.memo_hits,
        keyless.fp_cache_hits,
        keyless.build_free(),
    );

    let cancel = cancel_latency_scenario(args.reps.min(3));
    println!(
        "  cancel: hung-job cancel settles in {:.1} ms (bound {:.0} ms, \
         headroom {:.1}x), typed: {}, slot reclaimed: {}",
        cancel.latency_ns / 1e6,
        cancel.bound_ms,
        cancel.headroom(),
        cancel.typed,
        cancel.reclaimed,
    );

    let ladder = recovery_ladder_scenario(args.reps);
    println!(
        "  ladder: {}/{} diverge faults settled typed in <= {} of {} iterations \
         (headroom {:.1}x), {} NaN iterates committed, {}/{} rung rescues",
        ladder.diverged_typed,
        args.reps,
        ladder.iterations_to_diverge,
        ladder.max_iters,
        ladder.fast_fail_headroom(),
        ladder.nan_iterates_committed,
        ladder.ladder_rescues,
        ladder.ladder_runs,
    );

    let sharded = sharded_throughput_scenario(args.reps, 3);
    println!(
        "  sharded: {} clients vs a hung family ({} ms deadline) — single scheduler \
         {:.0} ns vs {}-shard pool {:.0} ns → {:.2}x, healthy slots on {} shards, \
         hung job isolated: {}, bit-identical: {}",
        sharded.clients,
        sharded.hung_deadline_ms,
        sharded.single_ns,
        sharded.shards,
        sharded.sharded_ns,
        sharded.speedup(),
        sharded.fast_shards,
        sharded.hung_isolated,
        sharded.bit_identical,
    );

    let telemetry = telemetry_overhead_scenario(args.reps);
    println!(
        "  telemetry: fresh solve on {:.0} ns vs off {:.0} ns → ratio {:.3}, \
         traced: {}, bit-identical: {}",
        telemetry.on_ns,
        telemetry.off_ns,
        telemetry.ratio(),
        telemetry.traced,
        telemetry.bit_identical,
    );

    // ------------------------------------------------------------------
    // Emit BENCH_pr9.json.
    // ------------------------------------------------------------------
    let json = format!(
        r#"{{
  "pr": 9,
  "title": "End-to-end telemetry: lifecycle traces, latency histograms, metrics verb",
  "machine_note": "emitted by `cargo run --release -p rfsim-bench --bin bench_gate`; absolute ns are machine-bound, the `ratios` section is what the CI gate compares (see docs/benching.md)",
  "benchmarks": [
    {{
      "name": "refactor/refactor_numeric",
      "median_ns": {refactor_ns:.1}
    }},
    {{
      "name": "refactor/factor_full",
      "median_ns": {full_factor_ns:.1}
    }},
    {{
      "name": "drift/restricted_pivot_sequence",
      "median_ns": {restricted_ns:.1}
    }},
    {{
      "name": "drift/full_fallback_sequence",
      "median_ns": {fallback_ns:.1}
    }},
    {{
      "name": "mpde/solve_warm_workspace",
      "median_ns": {warm_ns:.1}
    }},
    {{
      "name": "mpde/solve_cold_workspace",
      "median_ns": {cold_ns:.1}
    }},
    {{
      "name": "serve/grid_fresh_solve",
      "median_ns": {fresh_ns:.1}
    }},
    {{
      "name": "serve/grid_memo_hit",
      "median_ns": {memo_ns:.1}
    }},
    {{
      "name": "engine/batch_fresh_solve",
      "median_ns": {engine_fresh_ns:.1}
    }},
    {{
      "name": "engine/batch_memo_hit",
      "median_ns": {engine_memo_ns:.1}
    }},
    {{
      "name": "serve/memo_hit_submit",
      "median_ns": {keyless_ns:.1}
    }},
    {{
      "name": "serve/cancel_latency",
      "median_ns": {cancel_ns:.1}
    }},
    {{
      "name": "serve/hung_family_single_scheduler",
      "median_ns": {sharded_single_ns:.1}
    }},
    {{
      "name": "serve/hung_family_shard_pool",
      "median_ns": {sharded_pool_ns:.1}
    }},
    {{
      "name": "serve/fresh_solve_telemetry_on",
      "median_ns": {telemetry_on_ns:.1}
    }},
    {{
      "name": "serve/fresh_solve_telemetry_off",
      "median_ns": {telemetry_off_ns:.1}
    }}
  ],
  "drift": {{
    "stressed_refreshes": {stressed},
    "in_pattern_repairs": {repairs},
    "full_fallbacks": {fallbacks},
    "hit_rate": {hit_rate:.4},
    "fallback_rate": {fallback_rate:.4}
  }},
  "serve": {{
    "memo_hits": {memo_hits},
    "bit_identical_replay": {bit_identical},
    "keyless_builder_calls_during_memo": {keyless_builder_calls},
    "keyless_fp_cache_hits": {keyless_fp_hits}
  }},
  "engine_memo": {{
    "memo_hits": {engine_memo_hits},
    "bit_identical_replay": {engine_bit_identical}
  }},
  "control_plane": {{
    "cancel_latency_bound_ms": {cancel_bound_ms:.0},
    "cancel_typed_outcome": {cancel_typed},
    "cancel_slot_reclaimed": {cancel_reclaimed}
  }},
  "recovery_ladder": {{
    "diverged_typed": {ladder_diverged},
    "nan_iterates_committed": {ladder_nan},
    "iterations_to_diverge": {ladder_iters},
    "max_iters": {ladder_max_iters},
    "ladder_rescues": {ladder_rescues},
    "ladder_runs": {ladder_runs}
  }},
  "sharded": {{
    "shards": {sharded_shards},
    "clients": {sharded_clients},
    "hung_deadline_ms": {sharded_deadline_ms},
    "fast_shards": {sharded_fast_shards},
    "hung_isolated": {sharded_isolated},
    "bit_identical_across_pools": {sharded_bit_identical}
  }},
  "telemetry": {{
    "settled_trace_retained": {telemetry_traced},
    "bit_identical_across_planes": {telemetry_bit_identical}
  }},
  "ratios": {{
    "refactor_vs_full_factor": {refactor_speedup:.3},
    "drift_restricted_vs_full_fallback": {drift_speedup:.3},
    "mpde_warm_vs_cold_workspace": {warm_speedup:.3},
    "memo_hit_vs_fresh_solve": {memo_speedup:.3},
    "engine_memo_hit_vs_fresh_solve": {engine_memo_speedup:.3},
    "cancel_latency_headroom": {cancel_headroom:.3},
    "diverge_fast_fail_headroom": {ladder_headroom:.3},
    "sharded_throughput": {sharded_speedup:.3},
    "telemetry_overhead": {telemetry_ratio:.3}
  }}
}}
"#,
        restricted_ns = drift.restricted_ns,
        fallback_ns = drift.fallback_ns,
        stressed = drift.stressed_refreshes,
        repairs = drift.in_pattern_repairs,
        fallbacks = drift.full_fallbacks,
        hit_rate = drift.hit_rate(),
        fallback_rate = drift.fallback_rate(),
        fresh_ns = memo.fresh_ns,
        memo_ns = memo.memo_ns,
        memo_hits = memo.memo_hits,
        bit_identical = memo.bit_identical,
        memo_speedup = memo.speedup(),
        engine_fresh_ns = engine_memo.fresh_ns,
        engine_memo_ns = engine_memo.memo_ns,
        engine_memo_hits = engine_memo.memo_hits,
        engine_bit_identical = engine_memo.bit_identical,
        engine_memo_speedup = engine_memo.speedup(),
        keyless_ns = keyless.memo_submit_ns,
        keyless_builder_calls = keyless.builder_calls_during_memo,
        keyless_fp_hits = keyless.fp_cache_hits,
        cancel_ns = cancel.latency_ns,
        cancel_bound_ms = cancel.bound_ms,
        cancel_typed = cancel.typed,
        cancel_reclaimed = cancel.reclaimed,
        cancel_headroom = cancel.headroom(),
        ladder_diverged = ladder.diverged_typed,
        ladder_nan = ladder.nan_iterates_committed,
        ladder_iters = ladder.iterations_to_diverge,
        ladder_max_iters = ladder.max_iters,
        ladder_rescues = ladder.ladder_rescues,
        ladder_runs = ladder.ladder_runs,
        ladder_headroom = ladder.fast_fail_headroom(),
        sharded_single_ns = sharded.single_ns,
        sharded_pool_ns = sharded.sharded_ns,
        sharded_shards = sharded.shards,
        sharded_clients = sharded.clients,
        sharded_deadline_ms = sharded.hung_deadline_ms,
        sharded_fast_shards = sharded.fast_shards,
        sharded_isolated = sharded.hung_isolated,
        sharded_bit_identical = sharded.bit_identical,
        sharded_speedup = sharded.speedup(),
        telemetry_on_ns = telemetry.on_ns,
        telemetry_off_ns = telemetry.off_ns,
        telemetry_traced = telemetry.traced,
        telemetry_bit_identical = telemetry.bit_identical,
        telemetry_ratio = telemetry.ratio(),
    );
    std::fs::File::create(&args.out)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("bench_gate: wrote {}", args.out);

    // Sanity-check that what we wrote is valid against our own reader.
    Json::parse(&json).expect("bench_gate emitted invalid JSON");

    // ------------------------------------------------------------------
    // Gate against the committed baseline.
    // ------------------------------------------------------------------
    let baseline_text = std::fs::read_to_string(&args.baseline)
        .unwrap_or_else(|e| panic!("reading baseline {}: {e}", args.baseline));
    let baseline = Json::parse(&baseline_text)
        .unwrap_or_else(|e| panic!("parsing baseline {}: {e}", args.baseline));

    // BENCH_pr2.json predates the `ratios` section; derive its
    // refactor-adjacent ratios from the component costs it does carry, and
    // fall back to `ratios.*` for any newer baseline that has them.
    let baseline_warm_vs_cold = baseline
        .number_at("ratios.mpde_warm_vs_cold_workspace")
        .or_else(|| {
            let warm = baseline.number_at("component_costs_ns.solve_warm_workspace_cold_guess")?;
            let cold = baseline.number_at("component_costs_ns.solve_cold_workspace_cold_guess")?;
            Some(cold / warm)
        });
    let baseline_refactor = baseline.number_at("ratios.refactor_vs_full_factor");
    let baseline_drift = baseline.number_at("ratios.drift_restricted_vs_full_fallback");

    let mut checks = vec![
        GateCheck {
            name: "refactor_vs_full_factor".into(),
            measured: refactor_speedup,
            baseline: baseline_refactor,
            // The symbolic split has to stay clearly worth it.
            floor: 2.0,
        },
        GateCheck {
            name: "drift_restricted_vs_full_fallback".into(),
            measured: drift_speedup,
            baseline: baseline_drift,
            // Restricted pivoting must beat full fallbacks by a clear
            // margin on any machine (observed >= 1.59 across
            // containers), not merely break even.
            floor: 1.3,
        },
        GateCheck {
            name: "drift_in_pattern_hit_rate".into(),
            measured: drift.hit_rate(),
            baseline: None,
            // PR 3 acceptance criterion: >= 90% of pivot stresses
            // in-pattern.
            floor: 0.9,
        },
        GateCheck {
            name: "mpde_warm_vs_cold_workspace".into(),
            measured: warm_speedup,
            baseline: baseline_warm_vs_cold,
            floor: 1.1,
        },
        // The two memo-hit ratios are floor-gated only: their numerator
        // — a ~1 ms fresh solve — swings far more than ±25% with
        // machine state between recording sessions (observed 86x → 58x
        // with the memo-hit side unchanged), so a baseline comparison
        // punishes fresh solves getting *faster*. The 10x floors are the
        // acceptance criteria and carry the machine-portable guarantee.
        GateCheck {
            name: "memo_hit_vs_fresh_solve".into(),
            measured: memo.speedup(),
            baseline: None,
            // PR 4 acceptance criterion: serving a previously solved grid
            // from the solution store is >= 10x faster than re-solving.
            floor: 10.0,
        },
    ];
    checks.push(GateCheck {
        name: "netlist_submit_memo_vs_fresh".into(),
        measured: netlist.speedup(),
        baseline: None,
        // PR 10 acceptance criterion: resubmitting an identical netlist
        // is served from the store >= 10x faster than the cold
        // parse + register + solve path.
        floor: 10.0,
    });
    checks.push(GateCheck {
        name: "netlist_submit_replay_bit_identical".into(),
        measured: if netlist.bit_identical { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    checks.push(GateCheck {
        name: "engine_memo_hit_vs_fresh_solve".into(),
        measured: engine_memo.speedup(),
        baseline: None,
        // PR 5 acceptance criterion: a repeated identical batch served
        // from the engine's solution memo is >= 10x faster than
        // re-solving it.
        floor: 10.0,
    });
    // Bit-identical replay is pass/fail, not a ratio: encode it as a
    // 0/1 metric with a floor of 1.
    checks.push(GateCheck {
        name: "memo_replay_bit_identical".into(),
        measured: if memo.bit_identical { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    checks.push(GateCheck {
        name: "engine_memo_replay_bit_identical".into(),
        measured: if engine_memo.bit_identical { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    // PR 5 acceptance criterion: memo-hit submits never invoke the
    // family builder (their store key comes from the per-family
    // fingerprint cache). Pass/fail, floored at 1.
    checks.push(GateCheck {
        name: "keyless_submit_build_free".into(),
        measured: if keyless.build_free() { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    // PR 6 acceptance criteria. Headroom = bound / measured latency: a
    // hung solve must settle its cancellation within the bound. The
    // floor is the whole gate — headroom is dominated by scheduler
    // timing noise, so comparing it against a committed baseline would
    // only add flake (unlike the throughput ratios above).
    checks.push(GateCheck {
        name: "cancel_latency_headroom".into(),
        measured: cancel.headroom(),
        baseline: None,
        floor: 1.0,
    });
    checks.push(GateCheck {
        name: "cancel_typed_outcome".into(),
        measured: if cancel.typed { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    checks.push(GateCheck {
        name: "cancel_slot_reclaimed".into(),
        measured: if cancel.reclaimed { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    // PR 7 acceptance criteria. Every diverge-fault solve must settle
    // with the *typed* `Diverged` outcome (floor: at least one per run,
    // in practice all of them)…
    checks.push(GateCheck {
        name: "ladder_diverged_typed".into(),
        measured: ladder.diverged_typed as f64,
        baseline: None,
        floor: 1.0,
    });
    // …while committing zero NaN iterates — the headline bug. Encoded
    // inverted (1 = the committed-NaN count is exactly zero) because the
    // gate floors from below; the raw count is in the JSON's
    // `recovery_ladder` section.
    checks.push(GateCheck {
        name: "ladder_nan_iterates_zero".into(),
        measured: if ladder.nan_iterates_committed == 0 {
            1.0
        } else {
            0.0
        },
        baseline: None,
        floor: 1.0,
    });
    // Every plain-rung divergence must be rescued by the retry rung —
    // the climb dcop / the sweep retry rely on, end to end.
    checks.push(GateCheck {
        name: "ladder_rescue_rate".into(),
        measured: ladder.ladder_rescues as f64 / ladder.ladder_runs.max(1) as f64,
        baseline: None,
        floor: 1.0,
    });
    // The typed divergence must arrive well before the iteration
    // ceiling the pre-fix loop burned (observed 8x: the first step's
    // damping trials detect the non-finite iterates on the spot).
    checks.push(GateCheck {
        name: "diverge_fast_fail_headroom".into(),
        measured: ladder.fast_fail_headroom(),
        baseline: baseline.number_at("ratios.diverge_fast_fail_headroom"),
        floor: 2.0,
    });
    // PR 8 acceptance criteria. With one family hung, the shard pool
    // must serve the healthy clients at least as fast as the single
    // scheduler — floor-gated only (the measured value is dominated by
    // the hung job's deadline over the healthy work's machine-bound
    // solve time, so a baseline comparison would add flake)…
    checks.push(GateCheck {
        name: "sharded_throughput".into(),
        measured: sharded.speedup(),
        baseline: None,
        floor: 1.0,
    });
    // …with the hung job observed still pending on the pool after the
    // healthy work completed (the isolation property itself)…
    checks.push(GateCheck {
        name: "sharded_hung_isolated".into(),
        measured: if sharded.hung_isolated { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    // …with bit-identical solutions to the single-scheduler service —
    // sharding must never change results.
    checks.push(GateCheck {
        name: "sharded_bit_identical".into(),
        measured: if sharded.bit_identical { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    // PR 9 acceptance criteria. Telemetry is designed to be left on:
    // fresh-solve throughput with the full plane (histograms, timelines,
    // trace retention) must stay within 10% of the uninstrumented
    // service. Floor-gated only — the ratio hovers near 1.0 and its
    // residual is scheduler noise, so a baseline comparison would only
    // add flake.
    checks.push(GateCheck {
        name: "telemetry_overhead".into(),
        measured: telemetry.ratio(),
        baseline: None,
        floor: 0.9,
    });
    // …the instrumented service must actually have recorded a settled
    // trace (otherwise the ratio compares two identical code paths)…
    checks.push(GateCheck {
        name: "telemetry_trace_retained".into(),
        measured: if telemetry.traced { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    // …and instrumentation must never change results.
    checks.push(GateCheck {
        name: "telemetry_bit_identical".into(),
        measured: if telemetry.bit_identical { 1.0 } else { 0.0 },
        baseline: None,
        floor: 1.0,
    });
    println!(
        "bench_gate: comparing against {} (tolerance ±{:.0}%)",
        args.baseline,
        100.0 * args.tolerance
    );
    if evaluate(&checks, args.tolerance) {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        println!("bench_gate: FAIL — speedup regression against the committed baseline");
        ExitCode::FAILURE
    }
}
