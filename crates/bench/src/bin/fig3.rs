//! Figure 3: multitime differential output voltage of the balanced
//! LO-doubling mixer on the paper's 40×30 grid (LO 450 MHz, baseband
//! 15 kHz, bit-modulated RF near 900 MHz).

use rfsim_bench::output::{ascii_surface, write_surface_csv};
use rfsim_bench::paper::solve_paper_mixer;

fn main() {
    let (mixer, sol, elapsed) = solve_paper_mixer(vec![true, false, true, true]);
    println!(
        "MPDE solve: {} unknowns on 40×30 grid, {} Newton iterations, {elapsed:.2?} ({:?})",
        sol.stats.system_size, sol.stats.total_newton_iterations, sol.stats.strategy
    );
    let (n1, n2) = sol.grid.shape();
    let diff: Vec<f64> = sol
        .solution
        .surface(mixer.out_p)
        .iter()
        .zip(sol.solution.surface(mixer.out_n))
        .map(|(p, n)| p - n)
        .collect();
    let path = write_surface_csv(
        "fig3_diff_output.csv",
        &diff,
        n1,
        n2,
        sol.grid.t1_period(),
        sol.grid.t2_period(),
    )
    .expect("write CSV");
    println!("\nFigure 3: differential output v(out_p) − v(out_n) over");
    println!(
        "LO time scale (t1, {} ns) × baseband time scale (t2, {} ms):",
        1e9 / 450e6,
        1e3 / 15e3
    );
    ascii_surface(&diff, n1, n2, 24, 60);
    println!("CSV: {}", path.display());
    // The bit-stream shape is the t2 variation: report per-row means.
    let env: Vec<f64> = (0..n2)
        .map(|j| (0..n1).map(|i| diff[j * n1 + i]).sum::<f64>() / n1 as f64)
        .collect();
    let hi = env.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lo = env.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("baseband variation along t2: [{lo:.3}, {hi:.3}] V");
}
