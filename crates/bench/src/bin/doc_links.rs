//! CLI wrapper for the docs link checker (the CI `docs` job's second
//! pass): checks `README.md` and `docs/*.md` under `--root` (default the
//! current directory) and fails with a listing of every broken relative
//! link or unresolvable anchor.
//!
//! ```text
//! cargo run -p rfsim-bench --bin doc_links [-- --root /path/to/repo]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rfsim_bench::doclinks::check_repo_docs;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => root = PathBuf::from(it.next().expect("--root needs a value")),
            other => panic!("unknown flag {other}"),
        }
    }
    match check_repo_docs(&root) {
        Err(why) => {
            eprintln!("doc_links: {why}");
            ExitCode::FAILURE
        }
        Ok(issues) if issues.is_empty() => {
            println!("doc_links: all relative links and anchors resolve");
            ExitCode::SUCCESS
        }
        Ok(issues) => {
            for issue in &issues {
                eprintln!("{issue}");
            }
            eprintln!("doc_links: {} broken link(s)", issues.len());
            ExitCode::FAILURE
        }
    }
}
