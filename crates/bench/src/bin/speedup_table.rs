//! The paper's §3 "Computational speedup" analysis, regenerated.
//!
//! * MPDE cost is grid-bound: 40×30 = 1200 points regardless of tone
//!   spacing (the paper: 26 Newton iterations, 1 m 3 s in 2002).
//! * Single-time shooting resolves one *difference* period at ≥10 steps per
//!   LO period: ~300 000 steps for 450 MHz / 15 kHz — an equation system
//!   "more than 250× larger", for ">two orders of magnitude" more CPU.
//! * Speedup grows roughly linearly with the disparity f_LO/fd; the paper
//!   quotes an implementation-dependent break-even near 200.
//!
//! This binary sweeps the disparity on a 10 MHz-LO version of the balanced
//! mixer (so the shooting baseline stays affordable), measures both
//! methods, and extrapolates the shooting cost to the paper's full scale.

use rfsim_bench::output::write_csv;
use rfsim_bench::paper::{scaled_mixer, solve_paper_mixer};
use rfsim_mpde::solver::{solve_mpde, MpdeOptions};
use rfsim_shooting::{difference_period_steps, shooting_pss, ShootingOptions};
use std::time::Instant;

fn main() {
    println!("== Speedup vs frequency disparity (f_LO = 10 MHz balanced mixer) ==\n");
    println!(
        "{:>9} | {:>9} | {:>11} | {:>11} | {:>8} | {:>9}",
        "disparity", "steps", "t_mpde", "t_shoot", "speedup", "size ratio"
    );
    let mut rows = Vec::new();
    for disparity in [50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0] {
        let mixer = scaled_mixer(10e6, disparity);
        // MPDE on the paper's 40×30 grid.
        let t0 = Instant::now();
        let sol = solve_mpde(
            &mixer.circuit,
            mixer.params.t1_period(),
            mixer.params.t2_period(),
            MpdeOptions::default(),
        )
        .expect("MPDE solve");
        let t_mpde = t0.elapsed().as_secs_f64();
        // Shooting across the difference period, 10 steps per LO period
        // (the paper's accounting).
        let steps = difference_period_steps(mixer.params.f_lo, mixer.params.fd, 10);
        let t0 = Instant::now();
        let shot = shooting_pss(
            &mixer.circuit,
            mixer.params.t2_period(),
            None,
            ShootingOptions {
                steps_per_period: steps,
                max_outer: 10,
                ..Default::default()
            },
        )
        .expect("shooting");
        let t_shoot = t0.elapsed().as_secs_f64();
        let n = mixer.circuit.num_unknowns();
        let size_ratio = (steps * n) as f64 / sol.stats.system_size as f64;
        println!(
            "{:>9} | {:>9} | {:>10.2}s | {:>10.2}s | {:>7.2}x | {:>9.1}",
            disparity as u64,
            steps,
            t_mpde,
            t_shoot,
            t_shoot / t_mpde,
            size_ratio
        );
        rows.push(vec![
            disparity,
            steps as f64,
            t_mpde,
            t_shoot,
            t_shoot / t_mpde,
            size_ratio,
            shot.outer_iterations as f64,
            sol.stats.total_newton_iterations as f64,
        ]);
    }
    let path = write_csv(
        "speedup_table.csv",
        "disparity,shoot_steps,t_mpde_s,t_shoot_s,speedup,size_ratio,shoot_outer,mpde_newton",
        rows.clone(),
    )
    .expect("write CSV");
    println!("\nCSV: {}", path.display());

    // Fit speedup ≈ a·disparity to report the observed break-even.
    let (mut num, mut den) = (0.0, 0.0);
    for r in &rows {
        num += r[0] * r[4];
        den += r[0] * r[0];
    }
    let slope = num / den;
    println!(
        "\nspeedup ≈ {slope:.2e}·disparity  →  observed break-even ≈ {:.0}",
        1.0 / slope
    );
    println!("(paper: break-even ≈ 200, 'strongly dependent on implementation')");

    // Full paper scale: measure MPDE, extrapolate shooting from per-step cost.
    println!("\n== Paper scale: 450 MHz LO, 15 kHz baseband ==");
    let (_, sol, t_mpde) = solve_paper_mixer(vec![]);
    let steps_450 = difference_period_steps(450e6, 15e3, 10);
    // Per-step shooting cost from the largest measured sweep point.
    let last = rows.last().expect("rows nonempty");
    let per_step = last[3] / (last[1] * last[6]);
    let t_shoot_est = per_step * steps_450 as f64 * 2.0; // ≥2 outer iterations
    println!(
        "MPDE measured: {:.2}s ({} Newton iterations; paper: 63 s, 26 iterations)",
        t_mpde.as_secs_f64(),
        sol.stats.total_newton_iterations
    );
    println!(
        "shooting at 10 steps/LO period: {steps_450} steps (paper: 300 000); \
         estimated {t_shoot_est:.0} s from measured per-step cost"
    );
    println!(
        "estimated full-scale speedup: {:.0}× (paper: >100×)",
        t_shoot_est / t_mpde.as_secs_f64()
    );
}
