//! E9: the paper's §1 motivation — Fourier (harmonic balance) bases are
//! ill-suited to the sharp switching waveforms of integrated-RF mixers,
//! time-domain MPDE representations are not.
//!
//! Quantified three ways on the balanced mixer's frequency-doubled
//! common-source waveform:
//! 1. Fourier-coefficient decay: harmonics needed for 99.9% of AC energy,
//!    sharp node vs smooth (filtered) output node.
//! 2. Gibbs overshoot of truncated-Fourier reconstructions.
//! 3. A two-tone HB solve (spectral MPDE) at matched grid vs the FD-MPDE
//!    solve: residual ringing near the switching corners.

use rfsim_bench::output::write_csv;
use rfsim_bench::paper::scaled_mixer;
use rfsim_hb::hb2::{hb2_solve, Hb2Options};
use rfsim_hb::spectrum::{harmonics_for_energy_fraction, truncation_overshoot};
use rfsim_mpde::solver::{solve_mpde, MpdeOptions};

fn main() {
    let mixer = scaled_mixer(10e6, 200.0);
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions {
            n1: 64,
            n2: 8,
            ..Default::default()
        },
    )
    .expect("MPDE solve");

    println!("== Fourier compactness of mixer waveforms (fast axis, 64 samples) ==\n");
    let mut rows = Vec::new();
    for (name, unknown) in [
        ("common sources (doubler)", mixer.common),
        ("output (filtered)", mixer.out_p),
    ] {
        let wave = sol.solution.t1_slice(unknown, 0);
        let k999 = harmonics_for_energy_fraction(&wave, 0.999);
        let k99 = harmonics_for_energy_fraction(&wave, 0.99);
        let gibbs8 = truncation_overshoot(&wave, 8);
        let swing = wave.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - wave.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{name:>26}: 99% energy in {k99} harmonics, 99.9% in {k999}; \
             8-harmonic Gibbs overshoot {:.1}% of swing",
            100.0 * gibbs8 / swing.max(1e-12)
        );
        rows.push(vec![unknown as f64, k99 as f64, k999 as f64, gibbs8, swing]);
    }
    write_csv(
        "hb_vs_mpde_compactness.csv",
        "unknown,k99,k999,gibbs8,swing",
        rows,
    )
    .expect("write CSV");

    // HB2 at matched resolution, warm-started from the MPDE solution (cold
    // HB Newton is fragile on switching circuits — itself a finding).
    println!("\n== Two-tone HB (spectral MPDE) vs finite-difference MPDE ==");
    let hb = hb2_solve(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        Some(&sol.solution.data),
        Hb2Options {
            n1: 64,
            n2: 8,
            ..Default::default()
        },
    );
    match hb {
        Ok(hb) => {
            let fd_wave = sol.solution.t1_slice(mixer.common, 0);
            let hb_wave: Vec<f64> = (0..64).map(|i| hb.state(i, 0)[mixer.common]).collect();
            // Ringing metric: total variation of each discrete waveform.
            let tv = |w: &[f64]| -> f64 {
                (0..w.len())
                    .map(|i| (w[(i + 1) % w.len()] - w[i]).abs())
                    .sum()
            };
            let (tv_fd, tv_hb) = (tv(&fd_wave), tv(&hb_wave));
            println!(
                "total variation of common-source waveform: FD {tv_fd:.3} V, HB {tv_hb:.3} V \
                 (excess = spectral ringing)"
            );
            let rows = (0..64).map(|i| vec![i as f64, fd_wave[i], hb_wave[i]]);
            let p = write_csv("hb_vs_mpde_waveforms.csv", "i,v_fd,v_hb", rows).expect("csv");
            println!("CSV: {}", p.display());
        }
        Err(e) => println!("HB2 did not converge even warm-started: {e}"),
    }
    println!("\nconclusion: smooth nodes are Fourier-compact; the switching node is not —");
    println!("the time-domain (FD) MPDE representation handles both uniformly.");
}
