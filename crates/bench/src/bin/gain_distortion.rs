//! E8: down-conversion gain and distortion with pure-tone excitations
//! (the paper's §1/§3 measurement), swept over RF drive.

use rfsim_bench::output::write_csv;
use rfsim_circuits::{BalancedMixer, BalancedMixerParams};
use rfsim_mpde::solver::MpdeOptions;
use rfsim_rf::measure::{conversion_gain_db, hd_dbc, thd};
use rfsim_rf::sweep::amplitude_sweep;

fn main() {
    // 45 MHz-LO version keeps the sweep fast; mixing physics is unchanged.
    let base = BalancedMixerParams {
        f_lo: 45e6,
        fd: 15e3,
        rf_bits: vec![],
        ..Default::default()
    };
    let probe = BalancedMixer::build(base.clone()).expect("probe build");
    let amps: Vec<f64> = (0..10).map(|k| 0.005 * 1.6f64.powi(k)).collect();
    let base_c = base.clone();
    let points = amplitude_sweep(
        &amps,
        1.0 / base.f_lo,
        1.0 / base.fd,
        MpdeOptions {
            n1: 40,
            n2: 20,
            ..Default::default()
        },
        move |a| {
            Ok(BalancedMixer::build(BalancedMixerParams {
                rf_amplitude: a,
                ..base_c.clone()
            })?
            .circuit)
        },
    )
    .expect("sweep");

    println!("== Down-conversion gain & distortion vs RF amplitude ==\n");
    println!(
        "{:>9} | {:>9} | {:>9} | {:>9} | {:>8}",
        "A_rf (V)", "gain (dB)", "HD2 (dBc)", "HD3 (dBc)", "THD"
    );
    let mut rows = Vec::new();
    let mut g0: Option<f64> = None;
    let mut p1db: Option<f64> = None;
    for p in &points {
        let s = &p.solution.solution;
        let g = conversion_gain_db(s, probe.out_p, Some(probe.out_n), p.value);
        let hd2 = hd_dbc(s, probe.out_p, Some(probe.out_n), 2);
        let hd3 = hd_dbc(s, probe.out_p, Some(probe.out_n), 3);
        let t = thd(s, probe.out_p, Some(probe.out_n), 5);
        println!(
            "{:>9.4} | {:>9.2} | {:>9.1} | {:>9.1} | {:>8.4}",
            p.value, g, hd2, hd3, t
        );
        if g0.is_none() {
            g0 = Some(g);
        }
        if p1db.is_none() && g < g0.expect("set") - 1.0 {
            p1db = Some(p.value);
        }
        rows.push(vec![p.value, g, hd2, hd3, t]);
    }
    let path = write_csv(
        "gain_distortion.csv",
        "a_rf,gain_db,hd2_dbc,hd3_dbc,thd",
        rows,
    )
    .expect("write CSV");
    println!("\nCSV: {}", path.display());
    println!(
        "small-signal gain: {:.2} dB; balanced topology ⇒ HD2 deeply suppressed",
        g0.expect("at least one point")
    );
    match p1db {
        Some(a) => println!("≈1 dB compression at A_rf ≈ {a:.3} V"),
        None => println!("no compression in swept range"),
    }
}
