//! Figure 4: the baseband differential output — the envelope along the
//! difference-frequency time scale, i.e. the actual down-converted
//! bit stream of the balanced mixer.

use rfsim_bench::output::write_csv;
use rfsim_bench::paper::solve_paper_mixer;
use rfsim_rf::bits::decode_bpsk_envelope;

fn main() {
    let sent = vec![true, false, true, true];
    let (mixer, sol, _) = solve_paper_mixer(sent.clone());
    let env: Vec<f64> = sol
        .solution
        .envelope(mixer.out_p)
        .iter()
        .zip(sol.solution.envelope(mixer.out_n))
        .map(|(p, n)| p - n)
        .collect();
    let td = sol.grid.t2_period();
    let n2 = env.len();
    let rows = (0..n2).map(|j| vec![td * j as f64 / n2 as f64, env[j]]);
    let path = write_csv("fig4_baseband.csv", "t2,v_baseband", rows).expect("write CSV");

    println!("Figure 4: baseband differential output over one difference period");
    println!(
        "(Td = {:.3} ms; the transmitted bits modulate the 15 kHz tone)\n",
        td * 1e3
    );
    for (j, v) in env.iter().enumerate() {
        let bar = (((v + 0.16) / 0.32 * 56.0).clamp(0.0, 56.0)) as usize;
        println!(
            "{:7.2} µs {:+8.4} V |{}",
            td * 1e6 * j as f64 / n2 as f64,
            v,
            "█".repeat(bar)
        );
    }
    let decoded = decode_bpsk_envelope(&env, sent.len());
    let inverted: Vec<bool> = decoded.iter().map(|b| !b).collect();
    println!("\nsent    : {sent:?}");
    println!("decoded : {decoded:?}");
    println!(
        "recovered: {}",
        if decoded == sent || inverted == sent {
            "yes (up to BPSK polarity)"
        } else {
            "NO"
        }
    );
    println!("CSV: {}", path.display());
}
