//! Figure 6: the actual single-time voltage at the MOSFET sources over
//! 5 LO periods near t = 2.223 µs, reconstructed from the multitime
//! solution via x(t) = x̂(t, t) — and cross-checked against a direct
//! transient integration started from the reconstructed state.

use rfsim_bench::output::write_csv;
use rfsim_bench::paper::solve_paper_mixer;
use rfsim_circuit::transient::{transient_from, Integrator, TransientOptions};

fn main() {
    let (mixer, sol, _) = solve_paper_mixer(vec![true, false, true, true]);
    let t_lo = sol.grid.t1_period();
    let t_start = 2.223e-6; // the paper's window
    let t_end = t_start + 5.0 * t_lo;
    let pts = sol
        .solution
        .reconstruct_diagonal(mixer.common, t_start, t_end, 400);
    let path = write_csv(
        "fig6_source_5lo_periods.csv",
        "t,v_source",
        pts.iter().map(|&(t, v)| vec![t, v]),
    )
    .expect("write CSV");
    println!("Figure 6: v(common sources) over 5 LO periods from t = 2.223 µs");
    let hi = pts
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    let lo = pts.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    println!("swing: [{lo:.3}, {hi:.3}] V; 10 peaks expected (doubled LO)\n");
    // Terminal sketch.
    for k in (0..pts.len()).step_by(5) {
        let (t, v) = pts[k];
        let bar = (((v - lo) / (hi - lo) * 56.0).clamp(0.0, 56.0)) as usize;
        println!("{:9.4} µs |{}", t * 1e6, "▏".repeat(bar));
    }
    println!("CSV: {}", path.display());

    // Cross-check: transient from the reconstructed state at t_start.
    let n = mixer.circuit.num_unknowns();
    let x0: Vec<f64> = (0..n)
        .map(|u| sol.solution.interpolate(u, t_start, t_start))
        .collect();
    // Shift sources by t_start: wrap the window as local time 0..5·T_LO.
    // (Sources are periodic in both scales; evaluate via a shifted clone is
    // not available, so integrate the *same* circuit from t_start.)
    let res = transient_from(
        &mixer.circuit,
        x0,
        TransientOptions {
            t_stop: t_end,
            dt_init: t_lo / 200.0,
            dt_max: t_lo / 100.0,
            adaptive: false,
            integrator: Integrator::Trapezoidal,
            ..Default::default()
        },
    );
    match res {
        Ok(tr) => {
            // `transient_from` starts its clock at 0 with sources at t = 0;
            // because x̂ is T1-periodic in t1 and Td-periodic in t2 and
            // t_start was chosen on the diagonal, compare the *shape*
            // statistics rather than the pointwise values.
            let steady: Vec<f64> = (0..400)
                .map(|k| {
                    let t = t_end - 2.0 * t_lo + 2.0 * t_lo * k as f64 / 400.0;
                    tr.sample(mixer.common, t)
                })
                .collect();
            let tr_hi = steady.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let tr_lo = steady.iter().cloned().fold(f64::INFINITY, f64::min);
            println!(
                "\ntransient cross-check swing: [{tr_lo:.3}, {tr_hi:.3}] V \
                 (reconstruction: [{lo:.3}, {hi:.3}])"
            );
        }
        Err(e) => println!("\ntransient cross-check skipped: {e}"),
    }
}
