//! E10: the paper's robustness observation — "In cases where
//! Newton-Raphson did not converge, using continuation reliably obtained
//! solutions in 10–20 m" (vs 1 m 3 s for Newton with a good guess).
//!
//! We overdrive the LO so that cold-started global Newton struggles, and
//! compare: (a) Newton from the replicated DC point, (b) Newton from an
//! envelope-following guess, (c) source-ramping continuation.

use rfsim_bench::paper::scaled_mixer;
use rfsim_circuits::{BalancedMixer, BalancedMixerParams};
use rfsim_mpde::solver::{solve_mpde, InitialGuess, MpdeOptions, MpdeStrategy};
use std::time::Instant;

fn attempt(name: &str, mixer: &BalancedMixer, options: MpdeOptions) {
    let t0 = Instant::now();
    match solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        options,
    ) {
        Ok(sol) => println!(
            "{name:>28}: converged in {:.2?} — {:?}, {} total Newton iterations, \
             {} continuation steps",
            t0.elapsed(),
            sol.stats.strategy,
            sol.stats.total_newton_iterations,
            sol.stats.continuation_steps
        ),
        Err(e) => println!("{name:>28}: FAILED after {:.2?} ({e})", t0.elapsed()),
    }
}

fn main() {
    // Hard drive: LO swings far beyond the bias, deep switching.
    let hard = BalancedMixerParams {
        lo_amplitude: 1.2,
        rf_amplitude: 0.15,
        ..scaled_mixer(10e6, 500.0).params
    };
    let mixer = BalancedMixer::build(hard).expect("build");
    println!("overdriven balanced mixer (LO amplitude 1.2 V, deep switching):\n");

    // (a) plain Newton, cold start, no fallback, tight budget.
    attempt(
        "Newton (DC guess)",
        &mixer,
        MpdeOptions {
            newton: rfsim_circuit::newton::NewtonOptions {
                max_iters: 25,
                jacobian_reuse: 2,
                ..Default::default()
            },
            continuation_fallback: false,
            ..Default::default()
        },
    );
    // (b) Newton from an envelope-following sweep ("good starting guess").
    attempt(
        "Newton (envelope guess)",
        &mixer,
        MpdeOptions {
            initial_guess: InitialGuess::EnvelopeFollowing { sweeps: 1 },
            continuation_fallback: false,
            ..Default::default()
        },
    );
    // (c) continuation (λ-ramped sources).
    let t0 = Instant::now();
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions {
            newton: rfsim_circuit::newton::NewtonOptions {
                max_iters: 12, // force the fallback path quickly
                jacobian_reuse: 2,
                ..Default::default()
            },
            continuation_fallback: true,
            ..Default::default()
        },
    )
    .expect("continuation must succeed");
    println!(
        "{:>28}: converged in {:.2?} — {:?}, {} Newton iterations across {} λ steps",
        "continuation",
        t0.elapsed(),
        sol.stats.strategy,
        sol.stats.total_newton_iterations,
        sol.stats.continuation_steps
    );
    assert_eq!(sol.stats.strategy, MpdeStrategy::Continuation);
    println!(
        "\npaper: Newton with a good guess 1 m 3 s (26 iterations); \
         continuation 10–20 m when Newton fails — same qualitative ladder."
    );
}
