//! Figure 1: the *unsheared* bivariate representation
//! `ẑ1(t1,t2) = cos(2πf1·t1)·cos(2πf2·t2)` of the ideal mixing example
//! (f1 = 1 GHz, f2 = f1 − 10 kHz). Both axes are fast (nanoseconds); no
//! difference-frequency information is visible.

use rfsim_bench::output::{ascii_surface, write_surface_csv};
use rfsim_mpde::shear::IdealMixing;

fn main() {
    let m = IdealMixing::paper_example();
    let (n1, n2) = (40, 40);
    let surface = m.sample_zhat1(n1, n2);
    let path = write_surface_csv("fig1_zhat1.csv", &surface, n1, n2, 1.0 / m.f1, 1.0 / m.f2)
        .expect("write CSV");
    println!("Figure 1: ẑ1(t1,t2) on [0,T1]x[0,T2], T1 ≈ T2 ≈ 1 ns");
    ascii_surface(&surface, n1, n2, 20, 60);
    println!("CSV: {}", path.display());
    // Diagnostic: both axes show full-swing fast variation.
    let row: Vec<f64> = surface[..n1].to_vec();
    let col: Vec<f64> = (0..n2).map(|j| surface[j * n1]).collect();
    let swing = |v: &[f64]| {
        v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - v.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    println!(
        "t1-axis swing {:.3}, t2-axis swing {:.3} (both fast, ~2.0)",
        swing(&row),
        swing(&col)
    );
}
