//! Benchmark harness and figure-regeneration support for the DAC 2002
//! reproduction.
//!
//! Every table and figure of the paper has a regeneration binary under
//! `src/bin/` (run with `cargo run --release -p rfsim-bench --bin figN`);
//! Criterion micro/macro benchmarks live under `benches/`. CSV outputs land
//! in `target/repro/`. The experiment-to-binary map is in `DESIGN.md` §4
//! and measured results are recorded in `EXPERIMENTS.md`.

pub mod doclinks;
pub mod gate;
pub mod output;
pub mod paper;
