//! Bench-regression gate: the measurement scenarios, JSON schema helpers
//! and comparison rules behind the `bench_gate` binary and the CI
//! `bench-gate` job (see `docs/benching.md`).
//!
//! Absolute wall times are machine-bound, so the gate compares
//! machine-portable **ratios** (speedup of the optimised path over its
//! baseline path, both measured in the same process seconds apart)
//! against the ratios committed in the previous PR's `BENCH_*.json`,
//! within a relative tolerance. A ratio may improve freely; it fails the
//! gate when it drops more than `tolerance` below its baseline.

use std::time::Instant;

use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonSystem};
use rfsim_mpde::fdtd::MpdeSystem;
use rfsim_mpde::solver::{solve_mpde_with_workspace, MpdeOptions};
use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::sparse_lu::{LuOptions, Ordering, SparseLu};

use crate::paper::{comparison_grid, scaled_mixer};

/// Median of a sample of nanosecond measurements.
fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Times `reps` runs of `f` and returns the median nanoseconds.
pub fn time_median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    median_ns(samples)
}

/// Times `reps` interleaved runs of the pair `(a, b)` and returns the
/// median nanoseconds of each side. Alternating the sides within every
/// rep makes both sample the same window of machine state (CPU
/// frequency, cache pressure, co-tenant load), so the *ratio* of the two
/// medians stays meaningful even when the machine drifts over the
/// seconds a scenario takes — which back-to-back blocks of `a`-then-`b`
/// are not robust against.
pub fn time_paired_median_ns(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        a();
        sa.push(t0.elapsed().as_nanos() as f64);
        let t1 = Instant::now();
        b();
        sb.push(t1.elapsed().as_nanos() as f64);
    }
    (median_ns(sa), median_ns(sb))
}

/// The scaled-mixer MPDE grid Jacobian used by the refactor benchmarks
/// (assembled once at the DC operating point).
pub fn mpde_jacobian(n1: usize, n2: usize) -> Triplets {
    let mixer = scaled_mixer(10e6, 200.0);
    let grid = comparison_grid(&mixer, n1, n2);
    let sys = MpdeSystem::new(&mixer.circuit, grid, Default::default(), Default::default())
        .expect("system");
    let dim = sys.dim();
    let op =
        rfsim_circuit::dcop::dc_operating_point(&mixer.circuit, Default::default()).expect("dc");
    let mut x0 = Vec::with_capacity(dim);
    for _ in 0..grid.num_points() {
        x0.extend_from_slice(&op.solution);
    }
    let mut r = vec![0.0; dim];
    let mut jac = Triplets::with_capacity(dim, dim, 40 * dim);
    sys.residual_and_jacobian(&x0, &mut r, &mut jac);
    jac
}

/// `refactor_in_place` vs full `factor` medians (ns) on the scaled-mixer
/// MPDE Jacobian — the per-Newton-iteration cost after/before symbolic
/// reuse.
pub fn refactor_vs_full(reps: usize) -> (f64, f64) {
    let csc = mpde_jacobian(24, 16).to_csc();
    let mut lu = SparseLu::factor(&csc, LuOptions::default()).expect("factor");
    time_paired_median_ns(
        reps,
        || {
            lu.refactor_in_place(&csc).expect("refactor");
        },
        || {
            SparseLu::factor(&csc, LuOptions::default()).expect("factor");
        },
    )
}

/// Outcome of the drifting-operating-point scenario.
#[derive(Debug, Clone, Copy)]
pub struct DriftOutcome {
    /// Median ns for the full drift sequence with restricted pivoting.
    pub restricted_ns: f64,
    /// Median ns for the same sequence with restricted pivoting disabled
    /// (every stressed refresh pays a full re-factorisation).
    pub fallback_ns: f64,
    /// Pivot-stressing refreshes per sequence.
    pub stressed_refreshes: usize,
    /// Stressed refreshes the restricted-pivoting run repaired in-pattern.
    pub in_pattern_repairs: usize,
    /// Stressed refreshes that still fell back to a full factorisation.
    pub full_fallbacks: usize,
}

impl DriftOutcome {
    /// Fraction of pivot-stressing refreshes kept in-pattern.
    pub fn hit_rate(&self) -> f64 {
        self.in_pattern_repairs as f64 / self.stressed_refreshes as f64
    }

    /// Fraction that fell back to a full factorisation.
    pub fn fallback_rate(&self) -> f64 {
        self.full_fallbacks as f64 / self.stressed_refreshes as f64
    }
}

/// Dense diagonally dominant `bs × bs` blocks — the per-grid-point circuit
/// blocks of an MPDE Jacobian, where every in-block row exchange is
/// structurally admissible.
pub fn dense_block_matrix(seed: u64, nblocks: usize, bs: usize) -> Triplets {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0x2545F4914F6CDD1D);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let n = nblocks * bs;
    let mut t = Triplets::new(n, n);
    for blk in 0..nblocks {
        let base = blk * bs;
        for i in 0..bs {
            let mut offdiag = 0.0;
            for j in 0..bs {
                if i != j {
                    let v = next() * 2.0 - 1.0;
                    t.push(base + i, base + j, v);
                    offdiag += v.abs();
                }
            }
            t.push(base + i, base + i, offdiag + 1.0 + next());
        }
    }
    t
}

/// Same positions as `t`, values transformed by `f(row, col, v)`.
fn remap(t: &Triplets, f: impl Fn(usize, usize, f64) -> f64) -> Triplets {
    let mut out = Triplets::new(t.rows(), t.cols());
    let csr = t.to_csr();
    for i in 0..t.rows() {
        let (cols, vals) = csr.row(i);
        for (c, v) in cols.iter().zip(vals) {
            out.push(i, *c, f(i, *c, *v));
        }
    }
    out
}

/// Pivot-stressing refreshes per [`drift_sequence`] run.
pub const DRIFT_STEPS: usize = 12;

/// One run of the drifting-operating-point sequence: value refreshes on a
/// block Jacobian where every step kills the *current* pivot entry of one
/// block's leading column (the sharpest drift a sweep can produce) and
/// jitters everything else. With `restricted` pivoting the stressed
/// refreshes repair in-pattern; with the repair disabled
/// (`restricted = false`) each detected kill costs a full
/// re-factorisation. (Note this baseline is *repair disabled*, not the
/// pre-PR-3 code: the old absolute `pivot_abs_min` detection would have
/// silently accepted these ~1e-13 pivots and kept refactoring on a
/// numerically degraded factor — the comparison here is between the two
/// honest responses to a detected kill.) Returns
/// `(in_pattern_repairs, full_fallbacks)` over the [`DRIFT_STEPS`]
/// stressed refreshes.
pub fn drift_sequence(restricted: bool) -> (usize, usize) {
    let (nblocks, bs) = (48, 8);
    let t0 = dense_block_matrix(42, nblocks, bs);
    let a0 = t0.to_csc();
    let opts = LuOptions {
        ordering: Ordering::Natural,
        restricted_pivoting: restricted,
        ..Default::default()
    };
    let (mut repairs, mut fallbacks) = (0usize, 0usize);
    let mut lu = SparseLu::factor(&a0, opts).expect("factor");
    for step in 0..DRIFT_STEPS {
        let victim_col = (step % nblocks) * bs;
        let victim = lu.current_row_permutation()[victim_col];
        let gain = 1.0 + 0.02 * ((step + 1) as f64).sin();
        let tk = remap(&t0, |i, j, v| {
            if i == victim && j == victim_col {
                v * 1e-13
            } else {
                v * gain
            }
        });
        let ak = tk.to_csc();
        match lu.refactor_in_place(&ak) {
            Ok(report) => {
                if report.pivot_exchanges > 0 {
                    repairs += 1;
                }
            }
            Err(_) => {
                fallbacks += 1;
                lu = SparseLu::factor(&ak, opts).expect("fallback factor");
            }
        }
    }
    (repairs, fallbacks)
}

/// Times [`drift_sequence`] under both pivoting modes and aggregates the
/// in-pattern/fallback counts of the restricted runs.
pub fn drift_scenario(reps: usize) -> DriftOutcome {
    let (mut repairs, mut fallbacks) = (0usize, 0usize);
    let (restricted_ns, fallback_ns) = time_paired_median_ns(
        reps,
        || {
            let (r, f) = drift_sequence(true);
            repairs += r;
            fallbacks += f;
        },
        || {
            drift_sequence(false);
        },
    );
    DriftOutcome {
        restricted_ns,
        fallback_ns,
        stressed_refreshes: reps * DRIFT_STEPS,
        in_pattern_repairs: repairs,
        full_fallbacks: fallbacks,
    }
}

/// MPDE warm-workspace vs cold-workspace solve medians (ns) on the
/// balanced mixer — the per-point reuse lever the sweep engine multiplies
/// across batches (a leaner stand-in for the full `batched_sweep` bench,
/// sized for a CI gate).
pub fn mpde_warm_vs_cold(reps: usize) -> (f64, f64) {
    let mixer = scaled_mixer(10e6, 100.0);
    let opts = MpdeOptions {
        n1: 24,
        n2: 12,
        ..Default::default()
    };
    let mut ws = LinearSolverWorkspace::new();
    solve_mpde_with_workspace(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        opts.clone(),
        &mut ws,
    )
    .expect("prime");
    let (warm, cold) = time_paired_median_ns(
        reps,
        || {
            solve_mpde_with_workspace(
                &mixer.circuit,
                mixer.params.t1_period(),
                mixer.params.t2_period(),
                opts.clone(),
                &mut ws,
            )
            .expect("warm solve");
        },
        || {
            let mut cold_ws = LinearSolverWorkspace::new();
            solve_mpde_with_workspace(
                &mixer.circuit,
                mixer.params.t1_period(),
                mixer.params.t2_period(),
                opts.clone(),
                &mut cold_ws,
            )
            .expect("cold solve");
        },
    );
    (warm, cold)
}

/// Outcome of the repeated-batch memoisation scenario.
#[derive(Debug, Clone, Copy)]
pub struct MemoOutcome {
    /// Median ns to serve the grid with the solution store cold (evicted
    /// before every rep: full submit + solve + wait).
    pub fresh_ns: f64,
    /// Median ns to serve the identical grid from the solution store.
    pub memo_ns: f64,
    /// Memo-hit completions observed during the memo reps.
    pub memo_hits: usize,
    /// Whether every result — fresh re-solves and memo hits alike —
    /// carried the bit-identical sample digest of the first solve.
    pub bit_identical: bool,
}

impl MemoOutcome {
    /// Store speedup: fresh solve time over memo-hit time.
    pub fn speedup(&self) -> f64 {
        self.fresh_ns / self.memo_ns
    }
}

/// The repeated-batch serving scenario (PR 4 acceptance criterion): a
/// long-lived `rfsim-serve` service is asked for the same
/// amplitude × tone-spacing MPDE grid over and over — the dashboard /
/// regression-sweep traffic shape. Fresh reps evict the store first and
/// pay the full solve; memo reps are served from the store and must be
/// (a) ≥ 10x faster and (b) bit-identical to the fresh solves.
pub fn memo_roundtrip(reps: usize) -> MemoOutcome {
    use std::time::Duration;

    use rfsim_serve::service::{ServeConfig, SimService};
    use rfsim_serve::spec::JobSpec;

    let service = SimService::start(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let mut spec = JobSpec::mpde("diode_clipper", 1e6, vec![0.1, 0.2], vec![10e3, 20e3]);
    spec.n1 = 16;
    spec.n2 = 8;
    let wait = Duration::from_secs(600);
    let run = |s: &SimService| {
        let id = s.submit(&spec).expect("submit");
        s.wait(id, wait).expect("serve")
    };
    let reference = run(&service).digest();
    let mut bit_identical = true;
    let fresh_ns = time_median_ns(reps, || {
        service.evict(None);
        bit_identical &= run(&service).digest() == reference;
    });
    // Re-prime, then measure pure store service time.
    bit_identical &= run(&service).digest() == reference;
    let hits_before = service.stats().counters.total().memo_hits;
    let memo_ns = time_median_ns(reps, || {
        bit_identical &= run(&service).digest() == reference;
    });
    let memo_hits = service.stats().counters.total().memo_hits - hits_before;
    MemoOutcome {
        fresh_ns,
        memo_ns,
        memo_hits,
        bit_identical,
    }
}

/// Outcome of the netlist-submission serving scenario.
#[derive(Debug, Clone, Copy)]
pub struct NetlistSubmitOutcome {
    /// Median ns for a cold netlist submit: evicted store *and*
    /// unhosted family, so each rep pays parse + canonical hash +
    /// register + probe + full solve.
    pub fresh_ns: f64,
    /// Median ns to serve the identical netlist text from the store
    /// (parse + hash + memo hit, no solve).
    pub memo_ns: f64,
    /// Memo-hit completions observed during the memo reps.
    pub memo_hits: usize,
    /// Whether every rep — cold re-solves and memo hits alike — carried
    /// the bit-identical sample digest of the first solve.
    pub bit_identical: bool,
}

impl NetlistSubmitOutcome {
    /// Store speedup: cold netlist submit time over memo-hit time.
    pub fn speedup(&self) -> f64 {
        self.fresh_ns / self.memo_ns
    }
}

/// The netlist front-door scenario (PR 10 acceptance criterion): the
/// same `.rfn` text is submitted to a long-lived service over and over.
/// The first submit of each cold rep registers the content-addressed
/// dynamic family and solves; memo reps resubmit the identical text and
/// must be served from the solution store — (a) ≥ 10x faster than the
/// cold path and (b) bit-identical. This pins the whole text → hash →
/// family → store pipeline, including `evict` fully unhosting dynamic
/// families (a cold rep after evict must re-register, not memo-hit).
pub fn netlist_submit_scenario(reps: usize) -> NetlistSubmitOutcome {
    use std::time::Duration;

    use rfsim_serve::service::{ServeConfig, SimService};
    use rfsim_serve::spec::Priority;

    const NETLIST: &str = "V V1 in gnd drive\nR R1 in out 1k\nC C1 out gnd 160p\n\
                           .sweep amplitudes=0.1,0.2 spacings=10k,20k\n\
                           .analysis mpde f1=1M n1=16 n2=8\n";

    let service = SimService::start(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let wait = Duration::from_secs(600);
    let run = |s: &SimService| {
        let sub = s
            .submit_netlist(NETLIST, Priority::Normal, None)
            .expect("netlist submit");
        s.wait(sub.job_id, wait).expect("serve")
    };
    let reference = run(&service).digest();
    let mut bit_identical = true;
    let fresh_ns = time_median_ns(reps, || {
        // Evict wholesale: drops the stored grid, retires the family's
        // fingerprints, and unhosts the dynamic registration — the next
        // submit re-registers from its own text.
        service.evict(None);
        bit_identical &= run(&service).digest() == reference;
    });
    // Re-prime, then measure pure parse + hash + store service time.
    bit_identical &= run(&service).digest() == reference;
    let hits_before = service.stats().counters.total().memo_hits;
    let memo_ns = time_median_ns(reps, || {
        bit_identical &= run(&service).digest() == reference;
    });
    let memo_hits = service.stats().counters.total().memo_hits - hits_before;
    NetlistSubmitOutcome {
        fresh_ns,
        memo_ns,
        memo_hits,
        bit_identical,
    }
}

/// Outcome of the engine-level repeated-batch memoisation scenario.
#[derive(Debug, Clone, Copy)]
pub struct EngineMemoOutcome {
    /// Median ns to run the batch with the solution memo cold (evicted
    /// before every rep: probe + full Newton solves).
    pub fresh_ns: f64,
    /// Median ns to run the identical batch against a warm memo.
    pub memo_ns: f64,
    /// Memo hits observed during the memo reps.
    pub memo_hits: usize,
    /// Whether every rep — fresh re-solves and memo hits alike — carried
    /// the bit-identical sample digest of the first run.
    pub bit_identical: bool,
}

impl EngineMemoOutcome {
    /// Memo speedup: fresh batch time over memoised batch time.
    pub fn speedup(&self) -> f64 {
        self.fresh_ns / self.memo_ns
    }
}

/// The engine-level repeated-batch scenario (PR 5 acceptance criterion):
/// a long-lived `SweepEngine` in deterministic mode is handed the same
/// tokened two-family diode-clipper batch over and over. Fresh reps evict
/// the solution memo first and pay the full sweeps; memo reps are served
/// from the memo and must be (a) ≥ 10x faster and (b) bit-identical to
/// the fresh solves. This is the same shape as [`memo_roundtrip`], one
/// layer down: no service, no store — the engine alone.
pub fn engine_memo_scenario(reps: usize) -> EngineMemoOutcome {
    use rfsim_circuit::{BiWaveform, CircuitBuilder, DiodeParams, Envelope, GROUND};
    use rfsim_rf::key::{fnv1a_bytes, FNV_OFFSET};
    use rfsim_rf::pool::WorkerPool;
    use rfsim_rf::sweep::{MpdeSweepJob, SweepEngine, SweepPoint};

    let (f1, fd) = (1e6, 10e3);
    let clipper = |r_source: f64| {
        move |amplitude: f64| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource(
                "VRF",
                inp,
                GROUND,
                BiWaveform::ShearedCarrier {
                    amplitude,
                    k: 1,
                    f1,
                    fd,
                    phase: 0.0,
                    envelope: Envelope::Unit,
                },
            )?;
            b.resistor("R1", inp, out, r_source)?;
            b.diode("D1", out, GROUND, DiodeParams::default())?;
            b.capacitor("C1", out, GROUND, 1e-9)?;
            b.build()
        }
    };
    let opts = MpdeOptions {
        n1: 16,
        n2: 8,
        ..Default::default()
    };
    let jobs: Vec<MpdeSweepJob> = [1e3, 2e3]
        .iter()
        .map(|&r| {
            MpdeSweepJob::new(
                format!("clipper/{r}"),
                vec![0.1, 0.2],
                1.0 / f1,
                1.0 / fd,
                opts.clone(),
                clipper(r),
            )
            .with_memo_token(format!("clipper/{r}"))
        })
        .collect();
    // Deterministic mode: fresh re-solves are bit-reproducible, so the
    // digest comparison pins replay identity, not scheduling luck.
    let engine = SweepEngine::with_pool(WorkerPool::new(1)).chain_topology_groups(false);
    let digest = |results: &[rfsim_circuit::Result<Vec<SweepPoint>>]| {
        let mut h = FNV_OFFSET;
        for r in results {
            for p in r.as_ref().expect("batch converges") {
                for &s in &p.solution.solution.data {
                    h = fnv1a_bytes(h, &s.to_bits().to_le_bytes());
                }
            }
        }
        h
    };
    let reference = digest(&engine.run_mpde_batch(&jobs));
    let mut bit_identical = true;
    let fresh_ns = time_median_ns(reps, || {
        engine.evict_memo(None);
        bit_identical &= digest(&engine.run_mpde_batch(&jobs)) == reference;
    });
    // Re-prime, then measure pure memo service time.
    bit_identical &= digest(&engine.run_mpde_batch(&jobs)) == reference;
    let hits_before = engine.memo_stats().hits;
    let memo_ns = time_median_ns(reps, || {
        bit_identical &= digest(&engine.run_mpde_batch(&jobs)) == reference;
    });
    let memo_hits = engine.memo_stats().hits - hits_before;
    EngineMemoOutcome {
        fresh_ns,
        memo_ns,
        memo_hits,
        bit_identical,
    }
}

/// Outcome of the build-free (keyless) submit scenario.
#[derive(Debug, Clone, Copy)]
pub struct KeylessSubmitOutcome {
    /// Median ns for one memo-hit submit+poll round trip.
    pub memo_submit_ns: f64,
    /// Family-builder invocations observed *during* the memo-hit submits.
    pub builder_calls_during_memo: usize,
    /// Memo-hit completions observed during the memo reps.
    pub memo_hits: usize,
    /// Fingerprint-cache hits recorded for the memo-hit submits.
    pub fp_cache_hits: usize,
}

impl KeylessSubmitOutcome {
    /// The PR 5 acceptance criterion: memo-hit submits never invoke the
    /// family builder (the store key comes from the fingerprint cache).
    pub fn build_free(&self) -> bool {
        self.builder_calls_during_memo == 0 && self.memo_hits > 0
    }
}

/// The build-free submit scenario (PR 5 acceptance criterion): an
/// `rfsim-serve` service hosting a *counting* family — every builder
/// invocation bumps an atomic — is primed once, then asked for the same
/// grid repeatedly. Every repeat must be a store hit whose key came from
/// the per-family fingerprint cache: zero builder invocations, zero MNA
/// probes (see `docs/serving.md`).
pub fn keyless_submit_scenario(reps: usize) -> KeylessSubmitOutcome {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use rfsim_circuit::{CircuitBuilder, DiodeParams, GROUND};
    use rfsim_serve::service::{ServeConfig, SimService};
    use rfsim_serve::spec::JobSpec;

    let service = SimService::start(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let builds = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&builds);
    service.register_family("counted_clipper", move |p| {
        counter.fetch_add(1, Ordering::SeqCst);
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        b.resistor("R1", inp, out, 1e3)?;
        b.diode("D1", out, GROUND, DiodeParams::default())?;
        b.capacitor("C1", out, GROUND, 1e-9)?;
        b.build()
    });
    let mut spec = JobSpec::mpde("counted_clipper", 1e6, vec![0.1, 0.2], vec![10e3]);
    spec.n1 = 16;
    spec.n2 = 8;
    let wait = Duration::from_secs(600);
    // Prime: one full solve (builds the probe circuit + sweep points).
    let id = service.submit(&spec).expect("submit");
    service.wait(id, wait).expect("prime solve");
    let builds_before = builds.load(Ordering::SeqCst);
    let hits_before = service.stats().counters.total().memo_hits;
    let fp_hits_before = service.stats().keying.fp_cache_hits;
    let memo_submit_ns = time_median_ns(reps, || {
        let id = service.submit(&spec).expect("memo submit");
        service.wait(id, wait).expect("memo result");
    });
    let stats = service.stats();
    KeylessSubmitOutcome {
        memo_submit_ns,
        builder_calls_during_memo: builds.load(Ordering::SeqCst) - builds_before,
        memo_hits: stats.counters.total().memo_hits - hits_before,
        fp_cache_hits: stats.keying.fp_cache_hits - fp_hits_before,
    }
}

/// Outcome of the cancel-latency scenario.
#[derive(Debug, Clone, Copy)]
pub struct CancelOutcome {
    /// Median ns from issuing `cancel` on a hung (fault-stalled)
    /// *running* job to observing its settled cancellation.
    pub latency_ns: f64,
    /// The latency bound the gate holds the control plane to (ms).
    pub bound_ms: f64,
    /// Whether every follow-up job submitted after a cancel completed —
    /// the cancelled solve's scheduler slot really came back.
    pub reclaimed: bool,
    /// Whether every cancelled job settled with the typed `Cancelled`
    /// interruption (not a generic failure).
    pub typed: bool,
}

impl CancelOutcome {
    /// Headroom ratio: the bound over the measured latency. ≥ 1 means
    /// cancellation lands within the bound; bigger is better.
    pub fn headroom(&self) -> f64 {
        self.bound_ms * 1e6 / self.latency_ns
    }
}

/// The cancel-latency scenario (PR 6 acceptance criterion): a
/// deliberately-hung job — a deterministic stall fault sleeping per
/// residual evaluation, safety-bounded at 60 s — is cancelled while
/// running, and the gate measures how long the control plane takes to
/// settle it. Cancellation is cooperative (checked per residual
/// evaluation / Krylov matvec), so the latency budget is a few poll
/// intervals plus scheduler turnaround, far under [`CancelOutcome::
/// bound_ms`]. Each rep then runs a real job through the freed slot to
/// prove reclamation.
pub fn cancel_latency_scenario(reps: usize) -> CancelOutcome {
    use std::time::Duration;

    use rfsim_circuit::fault::SolveFault;
    use rfsim_numerics::InterruptReason;
    use rfsim_serve::service::{JobStatus, ServeConfig, SimService};
    use rfsim_serve::spec::JobSpec;

    const BOUND_MS: f64 = 1000.0;
    let service = SimService::start(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let spec = |amplitude: f64| {
        let mut s = JobSpec::mpde("rc_lowpass", 1e6, vec![amplitude], vec![10e3]);
        s.n1 = 8;
        s.n2 = 4;
        s
    };
    let wait = Duration::from_secs(600);
    let mut latencies = Vec::with_capacity(reps);
    let mut reclaimed = true;
    let mut typed = true;
    for rep in 0..reps {
        service.inject_fault("rc_lowpass", SolveFault::stall(5, 60_000));
        let id = service.submit(&spec(0.1)).expect("submit hung job");
        // Wait for the hang to actually be on a worker.
        loop {
            match service.poll(id).expect("poll") {
                JobStatus::Running => break,
                JobStatus::Queued => std::thread::sleep(Duration::from_millis(1)),
                other => panic!("hung job settled early: {other:?}"),
            }
        }
        let t0 = Instant::now();
        service.cancel(id).expect("cancel");
        let settled = loop {
            match service.poll(id).expect("poll") {
                JobStatus::Failed { interrupted, .. } => break interrupted,
                _ => std::thread::sleep(Duration::from_millis(1)),
            }
        };
        latencies.push(t0.elapsed().as_nanos() as f64);
        typed &= settled.map(|i| i.reason) == Some(InterruptReason::Cancelled);
        // The slot must be usable again immediately: un-fault the family
        // and run a fresh (never-memoised) job through it.
        service.clear_fault("rc_lowpass");
        let follow_up = spec(0.2 + 0.01 * rep as f64);
        reclaimed &= service
            .wait(service.submit(&follow_up).expect("submit"), wait)
            .is_ok();
    }
    CancelOutcome {
        latency_ns: median_ns(latencies),
        bound_ms: BOUND_MS,
        reclaimed,
        typed,
    }
}

/// Outcome of the recovery-ladder scenario.
#[derive(Debug, Clone, Copy)]
pub struct LadderOutcome {
    /// Diverge-fault solves that settled with the typed `Diverged`
    /// outcome (not a generic convergence failure, not an interruption).
    pub diverged_typed: usize,
    /// Progress snapshots carrying a non-finite residual — a NaN iterate
    /// the Newton loop committed and reported. The headline PR 7 bug;
    /// must stay zero.
    pub nan_iterates_committed: usize,
    /// Newton iterations the typed divergence consumed (depth of the
    /// deepest progress snapshot; the pre-fix loop burned the whole
    /// ceiling committing NaN iterates).
    pub iterations_to_diverge: usize,
    /// The iteration ceiling of the diverge-fault solve.
    pub max_iters: usize,
    /// Ladder runs whose diverging first rung was rescued by the retry
    /// rung (typed climb, not error-swallowing).
    pub ladder_rescues: usize,
    /// Ladder runs attempted.
    pub ladder_runs: usize,
}

impl LadderOutcome {
    /// Fast-fail headroom: the iteration ceiling over the iterations the
    /// typed divergence actually consumed. The pre-fix step committed
    /// non-finite iterates and ground to the ceiling (headroom ~1); the
    /// fixed step detects the non-finite damping trials on the spot.
    pub fn fast_fail_headroom(&self) -> f64 {
        self.max_iters as f64 / self.iterations_to_diverge.max(1) as f64
    }
}

/// The recovery-ladder scenario (PR 7 acceptance criterion): a
/// deterministic diverge fault — finite residual only at the seed, so
/// every damping trial of the first Newton step is non-finite — must
/// settle with the *typed* [`rfsim_circuit::CircuitError::Diverged`]
/// outcome in far fewer iterations than the ceiling, committing zero
/// NaN iterates along the way (watched via the budget's progress
/// snapshots). A two-rung [`rfsim_circuit::driver::NewtonDriver`]
/// ladder over the same shape
/// then proves the climb: the plain rung diverges, the retry rung
/// rescues the solve, and the outcome records which rung won.
pub fn recovery_ladder_scenario(reps: usize) -> LadderOutcome {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use rfsim_circuit::driver::{NewtonDriver, Rung, RungExec, RungKind};
    use rfsim_circuit::fault::SolveFault;
    use rfsim_circuit::newton::NewtonOptions;
    use rfsim_circuit::CircuitError;
    use rfsim_numerics::SolveBudget;

    /// Finite residual only at the seed: the first step diverges.
    struct NanRidge;
    impl NewtonSystem for NanRidge {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = if x[0] == 1.0 { 1.0 } else { f64::NAN };
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, 1.0);
        }
    }

    /// `F(x) = x − ½`: one Newton step from the fresh seed converges.
    struct Anchored;
    impl NewtonSystem for Anchored {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] - 0.5;
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, 1.0);
        }
    }

    // The diverge fault's pinned iteration ceiling (see
    // `SolveFault::run`): what the pre-fix loop would have burned.
    const FAULT_MAX_ITERS: usize = 8;
    let nan_snapshots = Arc::new(AtomicUsize::new(0));
    let deepest = Arc::new(AtomicUsize::new(0));
    let (nan_c, deep_c) = (Arc::clone(&nan_snapshots), Arc::clone(&deepest));
    let budget = SolveBudget::unlimited().observed(move |p| {
        // Zero-iteration snapshots are rung-entry announcements
        // (`SolveBudget::announce_stage`): no iterate has been committed
        // yet, so their infinite residuals are by design, not the bug
        // this counter guards against.
        if p.iteration > 0 && (!p.residual.is_finite() || !p.best_residual.is_finite()) {
            nan_c.fetch_add(1, Ordering::Relaxed);
        }
        deep_c.fetch_max(p.iteration, Ordering::Relaxed);
    });

    let mut diverged_typed = 0;
    for _ in 0..reps {
        let err = SolveFault::diverge()
            .run(&budget)
            .expect_err("the diverge fault must fail");
        if matches!(err, CircuitError::Diverged { .. }) {
            diverged_typed += 1;
        }
    }
    let iterations_to_diverge = deepest.load(Ordering::Relaxed);

    let mut ladder_rescues = 0;
    let mut workspace = LinearSolverWorkspace::new();
    for _ in 0..reps {
        let outcome = NewtonDriver::new(NewtonOptions {
            max_iters: FAULT_MAX_ITERS,
            ..Default::default()
        })
        .solve_ladder(
            "bench recovery ladder",
            &mut workspace,
            &budget,
            vec![
                Rung::new(RungKind::Plain, |exec: &mut RungExec<'_>| {
                    exec.newton(&NanRidge, &[1.0], &[]).map(|(x, _)| x)
                }),
                Rung::new(RungKind::RetryUnseeded, |exec: &mut RungExec<'_>| {
                    exec.newton(&Anchored, &[0.0], &[]).map(|(x, _)| x)
                }),
            ],
        )
        .expect("the retry rung rescues the solve");
        if outcome.rung == RungKind::RetryUnseeded && outcome.rungs_attempted == 2 {
            ladder_rescues += 1;
        }
    }

    LadderOutcome {
        diverged_typed,
        nan_iterates_committed: nan_snapshots.load(Ordering::Relaxed),
        iterations_to_diverge,
        max_iters: FAULT_MAX_ITERS,
        ladder_rescues,
        ladder_runs: reps,
    }
}

/// Outcome of the sharded-throughput scenario.
#[derive(Debug, Clone, Copy)]
pub struct ShardedOutcome {
    /// Median ns for the clients' solve traffic to complete against one
    /// single-scheduler service while a hung job pins its only
    /// scheduler.
    pub single_ns: f64,
    /// Median ns for the identical traffic against the sharded pool,
    /// where the hung job pins only its owning shard.
    pub sharded_ns: f64,
    /// Shards in the sharded pool.
    pub shards: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Distinct shards the clients' slots routed to (none of them the
    /// hung family's shard — verified by probing, not by luck).
    pub fast_shards: usize,
    /// Whether the hung job was still pending on the sharded pool when
    /// the clients' work had already completed — the isolation property
    /// itself, observed directly every rep.
    pub hung_isolated: bool,
    /// Whether the sharded pool produced digest-for-digest the same
    /// solution as the single scheduler (sharding must not change
    /// results).
    pub bit_identical: bool,
    /// Deadline (ms) bounding the hung job; the single-scheduler side's
    /// time is dominated by it.
    pub hung_deadline_ms: u64,
}

impl ShardedOutcome {
    /// Throughput ratio: single-scheduler time over sharded time for the
    /// same client traffic. ≥ 1 means the shard pool serves the healthy
    /// families no slower; in this scenario it is far above 1 because
    /// the single scheduler head-of-line-blocks every client behind the
    /// hung job while the pool keeps three of four shards serving.
    pub fn speedup(&self) -> f64 {
        self.single_ns / self.sharded_ns
    }
}

/// The sharded-throughput scenario (PR 8 acceptance criterion): the
/// head-of-line-blocking experiment from `docs/scaling.md`. One family
/// (`rc_stiff`) is hung with an injected stall fault — it sleeps instead
/// of converging until its deadline expires, the shape of a pathological
/// model or a wedged solve. Four client threads drive fresh solves of
/// healthy `rc_lowpass` slots while one hung job is in flight. On the
/// single-scheduler service the hung job occupies the only scheduler, so
/// every client waits out its deadline before any healthy work runs. On
/// the 4-shard pool the hung job pins only its owning shard; the
/// clients' slots — probed up front to route elsewhere — are solved
/// immediately by the other shards' schedulers. That is the scale-out
/// property this PR ships, and it holds on a single core precisely
/// because the hung job sleeps (holds no CPU) while healthy shards work.
/// The gate floors the ratio at 1.0; the measured value is
/// deadline-dominated (~deadline / healthy-work), so it is floor-gated
/// rather than baselined.
pub fn sharded_throughput_scenario(reps: usize, iters: usize) -> ShardedOutcome {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use rfsim_circuit::fault::SolveFault;
    use rfsim_serve::service::{JobId, JobStatus, ServeConfig, SimService};
    use rfsim_serve::spec::JobSpec;

    const CLIENTS: usize = 4;
    const SHARDS: usize = 4;
    const HUNG_DEADLINE_MS: u64 = 250;
    // The healthy candidate slots: distinct (family, first-amplitude)
    // fingerprints for the rendezvous hash to spread over the shards.
    const AMPLITUDES: [f64; 8] = [0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45];
    let spec = |first: f64, second: f64| {
        let mut s = JobSpec::mpde("rc_lowpass", 1e6, vec![first, second], vec![10e3]);
        s.n1 = 8;
        s.n2 = 4;
        s
    };
    // Routing keys on the first sweep point only, so varying the second
    // amplitude yields fresh solves that still land on the probed shard.
    let hung_spec = |second: f64| {
        let mut s = JobSpec::mpde("rc_stiff", 1e6, vec![0.5, second], vec![10e3]);
        s.n1 = 8;
        s.n2 = 4;
        s.deadline_ms = Some(HUNG_DEADLINE_MS);
        s
    };
    let wait = Duration::from_secs(600);
    let stall = || SolveFault::stall(5, 60_000);

    // Start the pool paused and probe slot placement: submit a queued
    // job, watch which shard's queue depth grew, cancel it. This pins
    // the hung family's shard and picks client slots that provably
    // route elsewhere — the isolation claim is constructed, not lucky.
    let sharded = SimService::start(ServeConfig {
        threads: 1,
        shards: SHARDS,
        paused: true,
        ..Default::default()
    });
    sharded.inject_fault("rc_stiff", stall());
    let place = |probe: &JobSpec| -> usize {
        let before: Vec<usize> = sharded
            .stats()
            .shards
            .iter()
            .map(|s| s.queue_depth)
            .collect();
        let id = sharded.submit(probe).expect("probe submit");
        let after: Vec<usize> = sharded
            .stats()
            .shards
            .iter()
            .map(|s| s.queue_depth)
            .collect();
        let shard = (0..SHARDS)
            .find(|&i| after[i] > before[i])
            .expect("a probe submit lands on exactly one shard");
        sharded.cancel(id).expect("probe cancel");
        shard
    };
    let hung_shard = place(&hung_spec(0.9));
    let placed: Vec<(f64, usize)> = AMPLITUDES
        .iter()
        .map(|&a| (a, place(&spec(a, 0.9))))
        .collect();
    let mut healthy: Vec<f64> = placed
        .iter()
        .filter(|&&(_, s)| s != hung_shard)
        .map(|&(a, _)| a)
        .collect();
    assert!(
        !healthy.is_empty(),
        "no candidate slot routes away from the hung shard"
    );
    let fast_shards = placed
        .iter()
        .filter(|&&(_, s)| s != hung_shard)
        .map(|&(_, s)| s)
        .collect::<std::collections::HashSet<_>>()
        .len();
    while healthy.len() < CLIENTS {
        let again = healthy.clone();
        healthy.extend(again);
    }
    healthy.truncate(CLIENTS);
    sharded.resume();

    let single = SimService::start(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    single.inject_fault("rc_stiff", stall());

    // Sharding must not change results: one identical fresh solve on
    // each side.
    let check = spec(healthy[0], 0.77);
    let id = single.submit(&check).expect("check submit");
    let single_digest = single.wait(id, wait).expect("check solve").digest();
    let id = sharded.submit(&check).expect("check submit");
    let sharded_digest = sharded.wait(id, wait).expect("check solve").digest();
    let bit_identical = single_digest == sharded_digest;

    // Every timed submit is key-unique (the tag perturbs the second
    // sweep point), so both sides solve fresh work — no memoisation, no
    // coalescing, and the hung jobs never merge across reps.
    let tag = AtomicUsize::new(1);
    let isolated = AtomicBool::new(true);
    let single_hung: RefCell<Vec<JobId>> = RefCell::new(Vec::new());
    let sharded_hung: RefCell<Vec<JobId>> = RefCell::new(Vec::new());
    let hammer =
        |service: &Arc<SimService>, hung_log: &RefCell<Vec<JobId>>, check_isolated: bool| {
            let t = tag.fetch_add(1, Ordering::Relaxed);
            let hung_id = service
                .submit(&hung_spec(0.3 + 1e-4 * t as f64))
                .expect("hung submit");
            hung_log.borrow_mut().push(hung_id);
            std::thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let service = Arc::clone(service);
                    let first = healthy[client];
                    let (spec, tag) = (&spec, &tag);
                    scope.spawn(move || {
                        for _ in 0..iters {
                            let t = tag.fetch_add(1, Ordering::Relaxed);
                            let id = service
                                .submit(&spec(first, 0.2 + 1e-4 * t as f64))
                                .expect("fresh submit");
                            let result = service.wait(id, wait).expect("healthy families solve");
                            assert!(!result.points.is_empty());
                        }
                    });
                }
            });
            if check_isolated {
                let pending = matches!(
                    service.poll(hung_id),
                    Ok(JobStatus::Queued | JobStatus::Running)
                );
                if !pending {
                    isolated.store(false, Ordering::Relaxed);
                }
            }
        };
    let (sharded_ns, single_ns) = time_paired_median_ns(
        reps,
        || hammer(&sharded, &sharded_hung, true),
        || hammer(&single, &single_hung, false),
    );

    // Drain: cancel every hung job (the stall fault polls its budget, so
    // a running one settles within milliseconds) so both services shut
    // down without waiting out queued deadlines.
    for id in single_hung.into_inner() {
        let _ = single.cancel(id);
        let _ = single.wait(id, wait);
    }
    for id in sharded_hung.into_inner() {
        let _ = sharded.cancel(id);
        let _ = sharded.wait(id, wait);
    }

    ShardedOutcome {
        single_ns,
        sharded_ns,
        shards: SHARDS,
        clients: CLIENTS,
        fast_shards,
        hung_isolated: isolated.load(Ordering::Relaxed),
        bit_identical,
        hung_deadline_ms: HUNG_DEADLINE_MS,
    }
}

/// Outcome of the telemetry-overhead scenario.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryOverheadOutcome {
    /// Median ns of a fresh grid solve with the telemetry plane on
    /// (histograms, timelines, trace retention — the default).
    pub on_ns: f64,
    /// Median ns of the identical fresh solve with `--no-telemetry`.
    pub off_ns: f64,
    /// Whether every solve — telemetry on and off alike — carried the
    /// bit-identical sample digest of the first solve.
    pub bit_identical: bool,
    /// Whether the telemetry-on service retained a settled trace for its
    /// final job (the instrumentation actually ran, so the ratio is a
    /// real measurement and not two identical code paths).
    pub traced: bool,
}

impl TelemetryOverheadOutcome {
    /// Telemetry overhead as a throughput ratio: telemetry-off solve
    /// time over telemetry-on solve time. 1.0 means telemetry is free;
    /// below 1.0 the instrumented path is slower by that factor.
    pub fn ratio(&self) -> f64 {
        self.off_ns / self.on_ns
    }
}

/// The telemetry-overhead scenario (PR 9 acceptance criterion): the
/// fresh-solve traffic shape of [`memo_roundtrip`], measured pairwise on
/// two otherwise-identical single-threaded services — one with the
/// telemetry plane on (default), one with `telemetry: false`. Telemetry
/// is designed to be left on, so fresh-solve throughput with it on must
/// stay ≥ 0.9x the uninstrumented baseline, and results must remain
/// bit-identical either way.
pub fn telemetry_overhead_scenario(reps: usize) -> TelemetryOverheadOutcome {
    use std::cell::Cell;
    use std::time::Duration;

    use rfsim_serve::service::{ServeConfig, SimService};
    use rfsim_serve::spec::JobSpec;

    let on = SimService::start(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let off = SimService::start(ServeConfig {
        threads: 1,
        telemetry: false,
        ..Default::default()
    });
    let mut spec = JobSpec::mpde("diode_clipper", 1e6, vec![0.1, 0.2], vec![10e3, 20e3]);
    spec.n1 = 16;
    spec.n2 = 8;
    let wait = Duration::from_secs(600);
    let run = |s: &SimService| {
        let id = s.submit(&spec).expect("submit");
        let digest = s.wait(id, wait).expect("serve").digest();
        (id, digest)
    };
    let reference = run(&on).1;
    let ok = Cell::new(run(&off).1 == reference);
    let last_on_id = Cell::new(None);
    let (on_ns, off_ns) = time_paired_median_ns(
        reps,
        || {
            on.evict(None);
            let (id, digest) = run(&on);
            last_on_id.set(Some(id));
            ok.set(ok.get() & (digest == reference));
        },
        || {
            off.evict(None);
            ok.set(ok.get() & (run(&off).1 == reference));
        },
    );
    let traced = last_on_id
        .get()
        .and_then(|id| on.trace(id).ok())
        .is_some_and(|t| t.settled && !t.events.is_empty());
    TelemetryOverheadOutcome {
        on_ns,
        off_ns,
        bit_identical: ok.get(),
        traced,
    }
}

// The JSON reader/writer this gate originally carried now lives in
// `rfsim_numerics::json`, where the serve wire protocol shares it;
// re-exported here so gate callers keep working unchanged.
pub use rfsim_numerics::json::Json;

/// One gated ratio: the measured value against its committed baseline.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Which ratio this row gates.
    pub name: String,
    /// The freshly measured ratio.
    pub measured: f64,
    /// The committed baseline ratio (`None` = new metric, floor-gated
    /// only).
    pub baseline: Option<f64>,
    /// Hard floor the measured value must clear regardless of baseline.
    pub floor: f64,
}

impl GateCheck {
    /// Whether this check passes under `tolerance` (relative slack below
    /// the baseline).
    pub fn passes(&self, tolerance: f64) -> bool {
        let above_floor = self.measured >= self.floor;
        let within_baseline = match self.baseline {
            Some(base) => self.measured >= base * (1.0 - tolerance),
            None => true,
        };
        above_floor && within_baseline
    }
}

/// Evaluates all checks, printing a verdict line per check; returns `true`
/// when every check passes.
pub fn evaluate(checks: &[GateCheck], tolerance: f64) -> bool {
    let mut ok = true;
    for check in checks {
        let pass = check.passes(tolerance);
        ok &= pass;
        let baseline = check
            .baseline
            .map_or("none (new metric)".to_string(), |b| format!("{b:.3}"));
        println!(
            "[{}] {}: measured {:.3}, baseline {}, floor {:.3}",
            if pass { "PASS" } else { "FAIL" },
            check.name,
            check.measured,
            baseline,
            check.floor,
        );
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reexport_reads_bench_schema() {
        // The parser moved to `rfsim_numerics::json` (which carries the
        // UTF-8 regression test); this pins the gate-facing re-export.
        let json = Json::parse(r#"{"ratios": {"x": 1.63}, "note": "naïve"}"#).expect("parse");
        assert_eq!(json.number_at("ratios.x"), Some(1.63));
        assert_eq!(json.path("note"), Some(&Json::String("naïve".into())));
    }

    #[test]
    fn gate_check_tolerance_semantics() {
        let check = |measured, baseline, floor| GateCheck {
            name: "r".into(),
            measured,
            baseline,
            floor,
        };
        // Within 15% of baseline: pass; below: fail; improvements pass.
        assert!(check(1.40, Some(1.63), 0.0).passes(0.15));
        assert!(!check(1.38, Some(1.63), 0.0).passes(0.15));
        assert!(check(2.0, Some(1.63), 0.0).passes(0.15));
        // Floor applies even without a baseline.
        assert!(check(0.95, None, 0.9).passes(0.15));
        assert!(!check(0.85, None, 0.9).passes(0.15));
    }

    #[test]
    fn memo_roundtrip_hits_and_replays_bit_identically() {
        // One cheap reprise of the PR 4 acceptance criterion (the >= 10x
        // floor itself is enforced by `bench_gate` in release mode).
        let outcome = memo_roundtrip(1);
        assert!(outcome.memo_hits >= 1, "{outcome:?}");
        assert!(outcome.bit_identical, "{outcome:?}");
        assert!(outcome.speedup() > 1.0, "{outcome:?}");
    }

    #[test]
    fn engine_memo_hits_and_replays_bit_identically() {
        // One cheap reprise of the PR 5 acceptance criterion (the >= 10x
        // floor itself is enforced by `bench_gate` in release mode).
        let outcome = engine_memo_scenario(1);
        assert_eq!(outcome.memo_hits, 2, "{outcome:?}");
        assert!(outcome.bit_identical, "{outcome:?}");
        assert!(outcome.speedup() > 1.0, "{outcome:?}");
    }

    #[test]
    fn keyless_submit_never_invokes_the_builder() {
        // One cheap reprise of the PR 5 acceptance criterion: memo-hit
        // submits compute their store key from the fingerprint cache.
        let outcome = keyless_submit_scenario(1);
        assert!(outcome.build_free(), "{outcome:?}");
        assert!(outcome.fp_cache_hits >= 1, "{outcome:?}");
    }

    #[test]
    fn cancel_scenario_settles_typed_and_reclaims() {
        // One cheap reprise of the PR 6 acceptance criterion (the
        // latency bound itself is enforced by `bench_gate` in release
        // mode): a hung fault-injected job cancels with the typed
        // outcome and its slot serves a follow-up job.
        let outcome = cancel_latency_scenario(1);
        assert!(outcome.typed, "{outcome:?}");
        assert!(outcome.reclaimed, "{outcome:?}");
        assert!(outcome.latency_ns > 0.0, "{outcome:?}");
    }

    #[test]
    fn recovery_ladder_fails_typed_rescues_and_commits_no_nan() {
        // One cheap reprise of the PR 7 acceptance criteria (the gate
        // floors run in release via `bench_gate`): typed divergence,
        // zero committed NaN iterates, and a real rung climb.
        let outcome = recovery_ladder_scenario(1);
        assert_eq!(outcome.diverged_typed, 1, "{outcome:?}");
        assert_eq!(outcome.nan_iterates_committed, 0, "{outcome:?}");
        assert_eq!(outcome.ladder_rescues, 1, "{outcome:?}");
        assert!(outcome.fast_fail_headroom() >= 2.0, "{outcome:?}");
    }

    #[test]
    fn sharded_pool_isolates_a_hung_family() {
        // One cheap reprise of the PR 8 acceptance criterion (the >= 1.0
        // throughput floor itself is enforced by `bench_gate` in release
        // mode): with one family hung on a stall fault, the 4-shard
        // pool finishes the healthy clients' solves while the hung job
        // is still pending, the clients' probed slots avoid the hung
        // shard, and the pool's solutions are bit-identical to the
        // single scheduler's.
        let outcome = sharded_throughput_scenario(1, 1);
        assert!(outcome.hung_isolated, "{outcome:?}");
        assert!(outcome.bit_identical, "{outcome:?}");
        assert!(outcome.fast_shards >= 1, "{outcome:?}");
        assert!(
            outcome.speedup() > 1.0,
            "the hung job must head-of-line-block only the single scheduler: {outcome:?}"
        );
    }

    #[test]
    fn drift_scenario_stays_in_pattern() {
        // One cheap reprise of the acceptance criterion: >= 90% of
        // pivot-stress refreshes repaired in-pattern (the dense-block
        // drift is 100% by construction).
        let outcome = drift_scenario(1);
        assert_eq!(outcome.stressed_refreshes, 12);
        assert!(
            outcome.hit_rate() >= 0.9,
            "hit rate {:.2} below the 90% acceptance floor",
            outcome.hit_rate()
        );
        assert_eq!(outcome.full_fallbacks, 0);
    }
}
