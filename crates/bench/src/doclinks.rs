//! Dependency-free Markdown link checker for the repo docs.
//!
//! The CI `docs` job (and a tier-1 test below) runs this over
//! `README.md` and `docs/*.md`: every **relative** link must point at a
//! file that exists, and every `#anchor` into a Markdown file must match
//! one of that file's headings under GitHub's slug rules. External
//! (`http(s)://`, `mailto:`) links are skipped — the point is that the
//! *internal* documentation graph cannot rot silently, not that the
//! internet is up.
//!
//! Parsing is deliberately small: inline `[text](target)` links and
//! reference definitions (`[label]: target`) are scanned line by line,
//! with fenced code blocks (``` … ```) excluded so protocol examples and
//! shell transcripts cannot produce false positives.

use std::fmt;
use std::path::{Path, PathBuf};

/// One broken link: where it is and why it fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkIssue {
    /// The Markdown file containing the link.
    pub file: PathBuf,
    /// 1-based line of the link.
    pub line: usize,
    /// The link target as written.
    pub target: String,
    /// What failed to resolve.
    pub why: String,
}

impl fmt::Display for LinkIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: broken link '{}': {}",
            self.file.display(),
            self.line,
            self.target,
            self.why
        )
    }
}

/// GitHub's heading-to-anchor slug: lowercase, alphanumerics kept,
/// spaces and hyphens become hyphens, everything else dropped.
fn slugify(heading: &str) -> String {
    let mut slug = String::with_capacity(heading.len());
    for c in heading.trim().chars() {
        if c.is_alphanumeric() || c == '_' {
            slug.extend(c.to_lowercase());
        } else if c == ' ' || c == '-' {
            slug.push('-');
        }
        // Other punctuation (backticks, colons, parens, …) is dropped.
    }
    slug
}

/// The lines of `text` with fenced code blocks blanked out (line numbers
/// preserved so issues point at the right place).
fn without_code_fences(text: &str) -> Vec<&str> {
    let mut in_fence = false;
    text.lines()
        .map(|line| {
            let fence = line.trim_start().starts_with("```");
            if fence {
                in_fence = !in_fence;
                ""
            } else if in_fence {
                ""
            } else {
                line
            }
        })
        .collect()
}

/// The anchor slugs of every heading in `text`, GitHub-style. Duplicate
/// headings get `-1`, `-2`, … suffixes like GitHub appends.
pub fn heading_anchors(text: &str) -> Vec<String> {
    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut anchors = Vec::new();
    for line in without_code_fences(text) {
        let trimmed = line.trim_start();
        let level = trimmed.chars().take_while(|&c| c == '#').count();
        if (1..=6).contains(&level) && trimmed[level..].starts_with(' ') {
            let slug = slugify(&trimmed[level..]);
            match seen.iter_mut().find(|(s, _)| *s == slug) {
                Some((_, n)) => {
                    *n += 1;
                    anchors.push(format!("{slug}-{n}"));
                }
                None => {
                    seen.push((slug.clone(), 0));
                    anchors.push(slug);
                }
            }
        }
    }
    anchors
}

/// Extracts `(line, target)` pairs for every inline link and reference
/// definition in `text`, code fences excluded.
pub fn link_targets(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in without_code_fences(text).into_iter().enumerate() {
        // Reference definitions: `[label]: target`.
        let trimmed = line.trim_start();
        if trimmed.starts_with('[') {
            if let Some(close) = trimmed.find("]:") {
                let target = trimmed[close + 2..].trim();
                let target = target.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    out.push((idx + 1, target.to_string()));
                    continue;
                }
            }
        }
        // Inline links: `[text](target)` (images included via `![`).
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(open) = line[i..].find("](") {
            let start = i + open + 2;
            let mut depth = 1usize;
            let mut end = start;
            while end < bytes.len() && depth > 0 {
                match bytes[end] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                end += 1;
            }
            if depth == 0 {
                let target = line[start..end - 1].trim();
                // Strip an optional `"title"` suffix.
                let target = target.split_whitespace().next().unwrap_or(target);
                if !target.is_empty() {
                    out.push((idx + 1, target.to_string()));
                }
            }
            i = end.max(start);
        }
    }
    out
}

/// Whether a target is out of scope for the checker (external schemes and
/// in-page autolinks the renderer owns).
fn external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('<')
}

/// Checks every relative link and anchor of the Markdown file at `path`.
///
/// # Errors
///
/// Returns `Err` with an I/O description when `path` itself is unreadable
/// (a missing *linked* file is a [`LinkIssue`], not an error).
pub fn check_file(path: &Path) -> std::result::Result<Vec<LinkIssue>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut issues = Vec::new();
    for (line, target) in link_targets(&text) {
        if external(&target) {
            continue;
        }
        let issue = |why: String| LinkIssue {
            file: path.to_path_buf(),
            line,
            target: target.clone(),
            why,
        };
        let (file_part, anchor) = match target.split_once('#') {
            Some((f, a)) => (f, Some(a)),
            None => (target.as_str(), None),
        };
        // Resolve the linked file (empty = this file).
        let linked = if file_part.is_empty() {
            path.to_path_buf()
        } else {
            dir.join(file_part)
        };
        if !linked.exists() {
            issues.push(issue(format!("file '{}' does not exist", linked.display())));
            continue;
        }
        if let Some(anchor) = anchor {
            // Anchors are only checkable in Markdown targets.
            if linked.extension().and_then(|e| e.to_str()) == Some("md") {
                let linked_text = if linked == path {
                    text.clone()
                } else {
                    match std::fs::read_to_string(&linked) {
                        Ok(t) => t,
                        Err(e) => {
                            issues.push(issue(format!("reading '{}': {e}", linked.display())));
                            continue;
                        }
                    }
                };
                if !heading_anchors(&linked_text).iter().any(|a| a == anchor) {
                    issues.push(issue(format!(
                        "anchor '#{anchor}' matches no heading in '{}'",
                        linked.display()
                    )));
                }
            }
        }
    }
    Ok(issues)
}

/// Checks `README.md` and every `docs/*.md` under `root` — the CI `docs`
/// job's scope. Returns all issues found.
///
/// # Errors
///
/// Propagates unreadable checked files (not unreadable link targets).
pub fn check_repo_docs(root: &Path) -> std::result::Result<Vec<LinkIssue>, String> {
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    if docs.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
            .map_err(|e| format!("reading {}: {e}", docs.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("md"))
            .collect();
        entries.sort();
        files.extend(entries);
    }
    let mut issues = Vec::new();
    for file in &files {
        issues.extend(check_file(file)?);
    }
    Ok(issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_match_github_rules() {
        assert_eq!(
            slugify("Store keying and quantisation"),
            "store-keying-and-quantisation"
        );
        assert_eq!(slugify("evict / shutdown"), "evict--shutdown");
        assert_eq!(slugify("`bench_gate` rules!"), "bench_gate-rules");
        assert_eq!(
            slugify("Why ratios, not nanoseconds"),
            "why-ratios-not-nanoseconds"
        );
    }

    #[test]
    fn headings_collect_with_duplicate_suffixes() {
        let text = "# Top\nbody\n## Sub\n```\n# not a heading\n```\n## Sub\n";
        assert_eq!(heading_anchors(text), vec!["top", "sub", "sub-1"]);
    }

    #[test]
    fn links_parse_inline_reference_and_skip_fences() {
        let text = "\
See [a](one.md) and [b](two.md#sec \"title\").\n\
```\n[not](parsed.md)\n```\n\
[ref]: ../up.md\n\
External [c](https://example.com) is skipped by the checker, not here.\n";
        let targets: Vec<String> = link_targets(text).into_iter().map(|(_, t)| t).collect();
        assert_eq!(
            targets,
            vec!["one.md", "two.md#sec", "../up.md", "https://example.com"]
        );
    }

    #[test]
    fn checker_flags_missing_files_and_anchors() {
        let dir = std::env::temp_dir().join(format!(
            "rfsim-doclinks-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = dir.join("a.md");
        let b = dir.join("b.md");
        std::fs::write(
            &a,
            "# A\nSee [b](b.md#real), [bad](b.md#fake), [gone](c.md),\nand [self](#a).\n",
        )
        .expect("write a");
        std::fs::write(&b, "# B\n## Real\n").expect("write b");
        let issues = check_file(&a).expect("check");
        let whys: Vec<&str> = issues.iter().map(|i| i.target.as_str()).collect();
        assert_eq!(whys, vec!["b.md#fake", "c.md"], "{issues:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repo_docs_have_no_broken_links() {
        // Tier-1 enforcement of the CI `docs` job: README.md and docs/*.md
        // must keep resolving.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let issues = check_repo_docs(&root).expect("readable docs");
        assert!(
            issues.is_empty(),
            "broken doc links:\n{}",
            issues
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
