//! Shared setups for the paper's experiments.

use rfsim_circuits::{BalancedMixer, BalancedMixerParams};
use rfsim_mpde::solver::{solve_mpde, MpdeOptions, MpdeSolution};
use rfsim_mpde::MultitimeGrid;
use std::time::{Duration, Instant};

/// The paper's §3 experiment: balanced mixer at 450 MHz LO / 15 kHz
/// baseband on the 40×30 grid.
///
/// # Panics
///
/// Panics if the build or solve fails (these binaries are the experiment
/// drivers; a failure should abort loudly).
pub fn solve_paper_mixer(bits: Vec<bool>) -> (BalancedMixer, MpdeSolution, Duration) {
    let params = BalancedMixerParams {
        rf_bits: bits,
        ..Default::default()
    };
    let mixer = BalancedMixer::build(params).expect("mixer builds");
    let t0 = Instant::now();
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions::default(),
    )
    .expect("MPDE solve converges");
    let elapsed = t0.elapsed();
    (mixer, sol, elapsed)
}

/// A disparity-scaled mixer (LO fixed, fd varied) for speedup sweeps.
///
/// # Panics
///
/// Panics if the build fails.
pub fn scaled_mixer(f_lo: f64, disparity: f64) -> BalancedMixer {
    let params = BalancedMixerParams {
        f_lo,
        fd: f_lo / disparity,
        rf_bits: vec![],
        ..Default::default()
    };
    BalancedMixer::build(params).expect("mixer builds")
}

/// Standard grid used when comparing methods at matched resolution.
pub fn comparison_grid(mixer: &BalancedMixer, n1: usize, n2: usize) -> MultitimeGrid {
    MultitimeGrid::new(n1, n2, mixer.params.t1_period(), mixer.params.t2_period())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_mixer_has_requested_disparity() {
        let m = scaled_mixer(10e6, 250.0);
        assert!((m.params.f_lo / m.params.fd - 250.0).abs() < 1e-9);
    }
}
