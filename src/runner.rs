//! Runs a parsed netlist: the engine behind the `rfsim` CLI.
//!
//! This module is the CLI-side twin of the serve tier's dispatch loop:
//! steady-state analyses go through the **same** [`rfsim_rf::sweep`]
//! jobs with the same options the scheduler builds from a `JobSpec`, and
//! the result digest is [`rfsim_serve::spec::JobResult::digest`] itself
//! — so a golden digest recorded from the CLI is comparable with one a
//! wire client observes for the same netlist.

use std::sync::Arc;
use std::time::Instant;

use rfsim_circuit::dcop::{dc_operating_point, DcOptions};
use rfsim_circuit::transient::{transient, TransientOptions, TransientResult};
use rfsim_circuit::CircuitError;
use rfsim_hb::Hb2Options;
use rfsim_mpde::solver::MpdeOptions;
use rfsim_netlist::{Analysis, DrivePoint, Netlist, NetlistError};
use rfsim_rf::sweep::{Hb2SweepJob, MpdeSweepJob, PeriodicFdSweepJob, SweepEngine};
use rfsim_serve::spec::{JobResult, PointSolution};
use rfsim_shooting::PeriodicFdOptions;

/// Why a run failed: the netlist was invalid, or a solve failed.
#[derive(Debug)]
pub enum RunError {
    /// Parse/validation failure (line-numbered).
    Netlist(NetlistError),
    /// Build or solve failure.
    Circuit(CircuitError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Netlist(e) => write!(f, "netlist: {e}"),
            RunError::Circuit(e) => write!(f, "solve: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<NetlistError> for RunError {
    fn from(e: NetlistError) -> Self {
        RunError::Netlist(e)
    }
}

impl From<CircuitError> for RunError {
    fn from(e: CircuitError) -> Self {
        RunError::Circuit(e)
    }
}

/// An `(x, y)` series for CSV output: out-node value against time (or
/// grid coordinate), and magnitude against frequency.
pub type Series = Vec<(f64, f64)>;

/// Everything a run produced: the serve-shaped result (and its wire
/// digest), solve statistics, and plottable series at the out node.
#[derive(Debug)]
pub struct RunReport {
    /// The analysis keyword that ran (`dcop`, `transient`, ...).
    pub analysis: &'static str,
    /// The content-addressed family name (`netlist:<16 hex>`).
    pub family: String,
    /// The solved points in the serve tier's row-major order
    /// (spacing-outer, amplitude-inner); synthetic single point for
    /// `dcop`/`transient`.
    pub result: JobResult,
    /// `JobResult::digest()` — FNV-1a over every coordinate and sample
    /// bit pattern, the same witness wire clients compare.
    pub digest: u64,
    /// Engine point solves performed (rows × amplitudes, or 1).
    pub solves: usize,
    /// Total Newton iterations across all solves.
    pub newton_iterations: usize,
    /// Unknowns of one point's nonlinear system.
    pub system_size: usize,
    /// Wall-clock seconds spent solving.
    pub elapsed_s: f64,
    /// Out-node waveform (time-like coordinate, value), when resolvable.
    pub waveform: Series,
    /// Out-node spectrum (frequency, magnitude), when resolvable.
    pub spectrum: Series,
}

impl RunReport {
    /// Solves per wall-clock second.
    #[must_use]
    pub fn solves_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.solves as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// Single-sided amplitude spectrum of uniformly sampled `signal` over
/// total duration `span` seconds: `(frequency, magnitude)` pairs.
fn single_sided_spectrum(signal: &[f64], span: f64) -> Series {
    let n = signal.len();
    if n < 2 || span <= 0.0 {
        return Vec::new();
    }
    let bins = rfsim_numerics::fft::fft_real(signal);
    (0..=n / 2)
        .map(|k| {
            let scale = if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
                1.0
            } else {
                2.0
            };
            (k as f64 / span, scale * bins[k].abs() / n as f64)
        })
        .collect()
}

fn transient_series(netlist: &Netlist, result: &TransientResult, t_stop: f64) -> (Series, Series) {
    let circuit = match netlist.build_circuit(None) {
        Ok(c) => c,
        Err(_) => return (Vec::new(), Vec::new()),
    };
    let Some(u) = netlist.out_unknown(&circuit) else {
        return (Vec::new(), Vec::new());
    };
    let signal = result.signal(u);
    let waveform: Series = result.times.iter().copied().zip(signal).collect();
    // The adaptive integrator's grid is non-uniform; resample onto a
    // power-of-two grid for the FFT.
    let m = 512usize;
    let resampled: Vec<f64> = (0..m)
        .map(|k| result.sample(u, t_stop * k as f64 / m as f64))
        .collect();
    (waveform, single_sided_spectrum(&resampled, t_stop))
}

/// Extracts waveform (fast axis at the first slow-axis row) and spectrum
/// (over the slow axis at the first fast-axis column) for the out-node
/// unknown of a bivariate steady-state surface stored as
/// `samples[(j*n1 + i)*n + u]`.
#[allow(clippy::too_many_arguments)]
fn bivariate_series(
    samples: &[f64],
    n: usize,
    n1: usize,
    n2: usize,
    t1_period: f64,
    t2_period: f64,
    unknown: usize,
) -> (Series, Series) {
    if n == 0 || samples.len() < n * n1 * n2 {
        return (Vec::new(), Vec::new());
    }
    let at = |i: usize, j: usize| samples[(j * n1 + i) * n + unknown];
    let waveform: Series = (0..n1)
        .map(|i| (t1_period * i as f64 / n1 as f64, at(i, 0)))
        .collect();
    let envelope: Vec<f64> = (0..n2).map(|j| at(0, j)).collect();
    (waveform, single_sided_spectrum(&envelope, t2_period))
}

/// Runs `netlist`'s analysis directive and returns the report.
///
/// # Errors
///
/// [`RunError::Circuit`] when a build or solve fails. (The netlist is
/// already validated; `RunError::Netlist` is for callers that parse and
/// run in one step.)
pub fn run_netlist(netlist: &Netlist) -> Result<RunReport, RunError> {
    match &netlist.analysis {
        Analysis::Dcop => run_dcop(netlist),
        Analysis::Transient { t_stop, dt, .. } => run_transient(netlist, *t_stop, *dt),
        Analysis::Mpde { .. } | Analysis::Hb2 { .. } | Analysis::PeriodicFd { .. } => {
            run_steady_state(netlist)
        }
    }
}

fn report(
    netlist: &Netlist,
    analysis: &'static str,
    result: JobResult,
    solves: usize,
    newton_iterations: usize,
    system_size: usize,
    elapsed_s: f64,
    series: (Series, Series),
) -> RunReport {
    let digest = result.digest();
    RunReport {
        analysis,
        family: netlist.family_name(),
        result,
        digest,
        solves,
        newton_iterations,
        system_size,
        elapsed_s,
        waveform: series.0,
        spectrum: series.1,
    }
}

fn run_dcop(netlist: &Netlist) -> Result<RunReport, RunError> {
    let circuit = netlist.build_circuit(None)?;
    let start = Instant::now();
    let dc = dc_operating_point(&circuit, DcOptions::default())?;
    let elapsed = start.elapsed().as_secs_f64();
    let system_size = dc.solution.len();
    let newton = dc.stats.iterations;
    // One synthetic point: the operating-point vector is the "samples".
    let result = JobResult {
        points: vec![PointSolution {
            amplitude: 0.0,
            spacing: 0.0,
            samples: dc.solution,
        }],
    };
    Ok(report(
        netlist,
        "dcop",
        result,
        1,
        newton,
        system_size,
        elapsed,
        (Vec::new(), Vec::new()),
    ))
}

fn run_transient(netlist: &Netlist, t_stop: f64, dt: f64) -> Result<RunReport, RunError> {
    let circuit = netlist.build_circuit(None)?;
    let options = TransientOptions {
        t_stop,
        dt_init: dt,
        ..TransientOptions::default()
    };
    let start = Instant::now();
    let tr = transient(&circuit, options)?;
    let elapsed = start.elapsed().as_secs_f64();
    let series = transient_series(netlist, &tr, t_stop);
    // The digested samples are the out-node trajectory when the out node
    // carries an unknown, the final state otherwise.
    let samples = if series.0.is_empty() {
        tr.state(tr.times.len() - 1).to_vec()
    } else {
        series.0.iter().map(|&(_, v)| v).collect()
    };
    let newton = tr.newton_iterations;
    let system_size = tr.num_unknowns;
    let result = JobResult {
        points: vec![PointSolution {
            amplitude: 0.0,
            spacing: 0.0,
            samples,
        }],
    };
    Ok(report(
        netlist,
        "transient",
        result,
        1,
        newton,
        system_size,
        elapsed,
        series,
    ))
}

/// One steady-state row: the spacing it solves at (0 for single-tone).
fn sweep_rows(netlist: &Netlist) -> Vec<f64> {
    let spacings = netlist
        .sweep
        .as_ref()
        .map(|s| s.spacings.clone())
        .unwrap_or_default();
    if spacings.is_empty() {
        vec![0.0]
    } else {
        spacings
    }
}

fn run_steady_state(netlist: &Netlist) -> Result<RunReport, RunError> {
    let (analysis, f1, n1, n2, two_tone) = match &netlist.analysis {
        Analysis::Mpde { f1, n1, n2, .. } => ("mpde", *f1, *n1, *n2, true),
        Analysis::Hb2 { f1, n1, n2, .. } => ("hb2", *f1, *n1, *n2, true),
        Analysis::PeriodicFd { f1, n1, .. } => ("periodic_fd", *f1, *n1, 0, false),
        _ => unreachable!("caller dispatches only steady-state analyses"),
    };
    let amplitudes = netlist
        .sweep
        .as_ref()
        .map(|s| s.amplitudes.clone())
        .unwrap_or_default();
    let rows = sweep_rows(netlist);
    let family = netlist.family_name();
    let shared = Arc::new(netlist.clone());
    // The same family closure the serve tier builds from `PointParams`:
    // substitute the `drive` source at each operating point.
    let make = |fd: f64| {
        let netlist = Arc::clone(&shared);
        move |amplitude: f64| {
            netlist.build_circuit(Some(&DrivePoint {
                amplitude,
                f1,
                spacing: fd,
                two_tone,
            }))
        }
    };

    let engine = SweepEngine::new();
    let mut result = JobResult { points: Vec::new() };
    let mut newton_iterations = 0usize;
    let mut system_size = 0usize;
    let mut series = (Vec::new(), Vec::new());
    let start = Instant::now();
    match analysis {
        "mpde" => {
            let jobs: Vec<MpdeSweepJob> = rows
                .iter()
                .map(|&fd| {
                    let options = MpdeOptions {
                        n1,
                        n2,
                        ..Default::default()
                    };
                    MpdeSweepJob::new(
                        format!("{family}/fd={fd}"),
                        amplitudes.clone(),
                        1.0 / f1,
                        1.0 / fd,
                        options,
                        make(fd),
                    )
                })
                .collect();
            for (row, outcome) in rows.iter().zip(engine.run_mpde_batch(&jobs)) {
                for point in outcome? {
                    let sol = point.solution;
                    newton_iterations += sol.stats.total_newton_iterations;
                    system_size = sol.stats.system_size;
                    if series.0.is_empty() {
                        if let Some(u) = circuit_out_unknown(netlist, *row, f1, two_tone) {
                            let (wn1, wn2) = sol.grid.shape();
                            series = bivariate_series(
                                &sol.solution.data,
                                sol.solution.num_unknowns,
                                wn1,
                                wn2,
                                sol.grid.t1_period(),
                                sol.grid.t2_period(),
                                u,
                            );
                        }
                    }
                    result.points.push(PointSolution {
                        amplitude: point.value,
                        spacing: *row,
                        samples: sol.solution.data,
                    });
                }
            }
        }
        "hb2" => {
            let jobs: Vec<Hb2SweepJob> = rows
                .iter()
                .map(|&fd| {
                    let options = Hb2Options {
                        n1,
                        n2,
                        ..Default::default()
                    };
                    Hb2SweepJob::new(
                        format!("{family}/fd={fd}"),
                        amplitudes.clone(),
                        1.0 / f1,
                        1.0 / fd,
                        options,
                        make(fd),
                    )
                })
                .collect();
            for (row, outcome) in rows.iter().zip(engine.run_hb2_batch(&jobs)) {
                for point in outcome? {
                    let sol = point.solution;
                    newton_iterations += sol.stats.iterations;
                    system_size = sol.samples.len();
                    if series.0.is_empty() {
                        if let Some(u) = circuit_out_unknown(netlist, *row, f1, two_tone) {
                            series = bivariate_series(
                                &sol.samples,
                                sol.num_unknowns,
                                sol.shape.0,
                                sol.shape.1,
                                sol.period1,
                                sol.period2,
                                u,
                            );
                        }
                    }
                    result.points.push(PointSolution {
                        amplitude: point.value,
                        spacing: *row,
                        samples: sol.samples,
                    });
                }
            }
        }
        _ => {
            let jobs: Vec<PeriodicFdSweepJob> = rows
                .iter()
                .map(|&fd| {
                    let options = PeriodicFdOptions {
                        n_samples: n1,
                        ..Default::default()
                    };
                    PeriodicFdSweepJob::new(
                        family.clone(),
                        amplitudes.clone(),
                        1.0 / f1,
                        options,
                        make(fd),
                    )
                })
                .collect();
            for (row, outcome) in rows.iter().zip(engine.run_periodic_fd_batch(&jobs)) {
                for point in outcome? {
                    let sol = point.solution;
                    newton_iterations += sol.stats.iterations;
                    system_size = sol.samples.len();
                    if series.0.is_empty() {
                        if let Some(u) = circuit_out_unknown(netlist, *row, f1, two_tone) {
                            let period = 1.0 / f1;
                            let n_pts = sol.samples.len() / sol.num_unknowns.max(1);
                            let signal: Vec<f64> = (0..n_pts).map(|i| sol.state(i)[u]).collect();
                            let waveform: Series = signal
                                .iter()
                                .enumerate()
                                .map(|(i, &v)| (period * i as f64 / n_pts as f64, v))
                                .collect();
                            let spectrum = single_sided_spectrum(&signal, period);
                            series = (waveform, spectrum);
                        }
                    }
                    result.points.push(PointSolution {
                        amplitude: point.value,
                        spacing: *row,
                        samples: sol.samples,
                    });
                }
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let solves = result.points.len();
    Ok(report(
        netlist,
        analysis,
        result,
        solves,
        newton_iterations,
        system_size,
        elapsed,
        series,
    ))
}

/// Resolves the out-node unknown by building one circuit at a nominal
/// drive point (unit amplitude — the unknown index is structural, not
/// value-dependent).
fn circuit_out_unknown(netlist: &Netlist, fd: f64, f1: f64, two_tone: bool) -> Option<usize> {
    let circuit = netlist
        .build_circuit(Some(&DrivePoint {
            amplitude: 1.0,
            f1,
            spacing: fd,
            two_tone,
        }))
        .ok()?;
    netlist.out_unknown(&circuit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcop_runs_and_digests_deterministically() {
        let netlist =
            Netlist::parse("V V1 in gnd dc 1\nR R1 in out 1k\nR R2 out gnd 2k\n.analysis dcop\n")
                .expect("parse");
        let a = run_netlist(&netlist).expect("run");
        let b = run_netlist(&netlist).expect("run again");
        assert_eq!(a.digest, b.digest, "dcop must be bit-deterministic");
        assert_eq!(a.solves, 1);
        // Divider: out = 1 V · 2k / 3k.
        let out = &a.result.points[0].samples;
        assert!((out[1] - 2.0 / 3.0).abs() < 1e-9, "divider voltage {out:?}");
    }

    #[test]
    fn mpde_sweep_runs_every_grid_point() {
        let netlist = Netlist::parse(
            "V V1 in gnd drive\nR R1 in out 1k\nC C1 out gnd 160p\n\
             .sweep amplitudes=0.5,1 spacings=1k,2k\n.analysis mpde f1=1M n1=8 n2=4\n",
        )
        .expect("parse");
        let a = run_netlist(&netlist).expect("run");
        assert_eq!(a.solves, 4, "2 spacings × 2 amplitudes");
        assert_eq!(a.result.points.len(), 4);
        assert!(a.newton_iterations > 0);
        assert!(!a.waveform.is_empty() && !a.spectrum.is_empty());
        let b = run_netlist(&netlist).expect("run again");
        assert_eq!(a.digest, b.digest, "steady state must be bit-deterministic");
    }

    #[test]
    fn transient_waveform_tracks_the_out_node() {
        let netlist = Netlist::parse(
            "V V1 in gnd sine amp=1 freq=1M phase=0 offset=0\nR R1 in out 1k\n\
             C C1 out gnd 160p\n.analysis transient tstop=2u dt=10n\n",
        )
        .expect("parse");
        let r = run_netlist(&netlist).expect("run");
        assert!(r.waveform.len() > 10);
        assert_eq!(r.result.points[0].samples.len(), r.waveform.len());
        assert!(!r.spectrum.is_empty());
    }
}
