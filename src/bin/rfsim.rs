//! The `rfsim` CLI: parse a `.rfn` netlist, run its analysis directive,
//! print solve statistics, and write waveform/spectrum CSVs.
//!
//! ```text
//! rfsim run <file.rfn> [--out-dir DIR] [--no-files]
//! rfsim check <file.rfn>
//! rfsim fmt <file.rfn>
//! ```
//!
//! Exit codes: 0 success, 1 solve failure, 2 usage or netlist error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rfsim::runner::{run_netlist, RunReport, Series};
use rfsim_netlist::Netlist;

const USAGE: &str = "\
rfsim — netlist front end for the RF steady-state engines

USAGE:
    rfsim run <file.rfn> [--out-dir DIR] [--no-files]
        Parse the netlist, run its .analysis directive, print solve
        statistics, and write <stem>.waveform.csv / <stem>.spectrum.csv.
    rfsim check <file.rfn>
        Parse and validate only; print a summary.
    rfsim fmt <file.rfn>
        Print the canonical form (the text whose hash names the family).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match command {
        "run" => cmd_run(rest),
        "check" => cmd_check(rest),
        "fmt" => cmd_fmt(rest),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command '{other}'\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Reads and parses the netlist at `path`, reporting errors with the
/// file name prefixed.
fn load(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Netlist::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_fmt(rest: &[String]) -> ExitCode {
    let [path] = rest else {
        eprintln!("usage: rfsim fmt <file.rfn>");
        return ExitCode::from(2);
    };
    match load(path) {
        Ok(netlist) => {
            print!("{}", netlist.canonical());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(rest: &[String]) -> ExitCode {
    let [path] = rest else {
        eprintln!("usage: rfsim check <file.rfn>");
        return ExitCode::from(2);
    };
    match load(path) {
        Ok(netlist) => {
            println!("ok       {path}");
            println!("family   {}", netlist.family_name());
            println!("analysis {}", netlist.analysis.keyword());
            println!("devices  {}", netlist.devices.len());
            println!("nodes    {}", netlist.node_names().len());
            if let Some(sweep) = &netlist.sweep {
                println!(
                    "sweep    {} amplitudes × {} spacings",
                    sweep.amplitudes.len(),
                    sweep.spacings.len().max(1)
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_run(rest: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut write_files = true;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out-dir" => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --out-dir needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--no-files" => write_files = false,
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("error: unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: rfsim run <file.rfn> [--out-dir DIR] [--no-files]");
        return ExitCode::from(2);
    };
    let netlist = match load(path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run_netlist(&netlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_report(path, &report);
    if write_files {
        if let Err(e) = write_series_files(path, out_dir.as_deref(), &report) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn print_report(path: &str, report: &RunReport) {
    println!("netlist    {path}");
    println!("family     {}", report.family);
    println!("analysis   {}", report.analysis);
    println!("points     {}", report.result.points.len());
    println!("samples    {}", report.result.num_samples());
    println!("system     {} unknowns", report.system_size);
    println!("newton     {} iterations", report.newton_iterations);
    println!("digest     {:016x}", report.digest);
    println!("elapsed    {:.6} s", report.elapsed_s);
    println!("throughput {:.2} solves/sec", report.solves_per_sec());
}

fn write_csv(path: &Path, header: &str, series: &Series) -> Result<(), String> {
    let mut text = String::with_capacity(series.len() * 32 + header.len() + 1);
    text.push_str(header);
    text.push('\n');
    for (x, y) in series {
        text.push_str(&format!("{x},{y}\n"));
    }
    std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))
}

fn write_series_files(
    input: &str,
    out_dir: Option<&Path>,
    report: &RunReport,
) -> Result<(), String> {
    let input = Path::new(input);
    let stem = input
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "rfsim".to_string());
    let dir = match out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            dir.to_path_buf()
        }
        None => input.parent().unwrap_or(Path::new(".")).to_path_buf(),
    };
    if !report.waveform.is_empty() {
        let path = dir.join(format!("{stem}.waveform.csv"));
        write_csv(&path, "time,value", &report.waveform)?;
        println!(
            "wrote      {} ({} rows)",
            path.display(),
            report.waveform.len()
        );
    }
    if !report.spectrum.is_empty() {
        let path = dir.join(format!("{stem}.spectrum.csv"));
        write_csv(&path, "frequency,magnitude", &report.spectrum)?;
        println!(
            "wrote      {} ({} rows)",
            path.display(),
            report.spectrum.len()
        );
    }
    Ok(())
}
