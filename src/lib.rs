//! # rfsim — time-domain RF steady state for closely spaced tones
//!
//! A from-scratch Rust reproduction of Roychowdhury, *"A Time-domain RF
//! Steady-State Method for Closely Spaced Tones"* (DAC 2002): the sheared
//! multi-time PDE (MPDE) method, the SPICE-class circuit substrate it runs
//! on, the shooting and harmonic-balance baselines it is compared against,
//! and the RF measurement layer used in the paper's evaluation.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`numerics`] | `rfsim-numerics` | dense/sparse LA, sparse LU with symbolic reuse, GMRES/BiCGStab, FFT, periodic differentiation |
//! | [`circuit`] | `rfsim-circuit` | MNA, device models, DC operating point, transient |
//! | [`shooting`] | `rfsim-shooting` | Newton/Krylov shooting, periodic FD collocation |
//! | [`hb`] | `rfsim-hb` | single- and two-tone harmonic balance |
//! | [`mpde`] | `rfsim-mpde` | **the paper's method**: sheared MPDE grids, FDTD Newton, continuation, envelope following |
//! | [`rf`] | `rfsim-rf` | PRBS, conversion gain, distortion, eye/ISI, the batched [`rf::sweep::SweepEngine`] + solution memo |
//! | [`circuits`] | `rfsim-circuits` | balanced LO-doubling mixer, unbalanced mixer, fixtures |
//! | [`serve`] | `rfsim-serve` | the memoising simulation service: solution store, priority queue, wire protocol |
//!
//! # Solver architecture: factor once, refactor forever
//!
//! Every engine in this workspace bottoms out in the same Newton hot path:
//! assemble a sparse Jacobian from device stamps, solve `J·dx = −F`, repeat.
//! The Jacobian's *sparsity structure* is fixed for the life of a circuit —
//! only its values change — so all structural work is done once and cached:
//!
//! 1. **Assembly** — device stamps push a value-independent triplet
//!    sequence (exact zeros included). A
//!    [`numerics::sparse::CscAssembly`] / [`numerics::sparse::CsrAssembly`]
//!    slot map, built on the first assembly, scatters every later one into
//!    the compressed matrix in place: no counting sort, no dedup, no
//!    allocation.
//! 2. **Factorisation** — [`numerics::sparse_lu::SparseLu::factor`] runs
//!    the full Gilbert–Peierls pipeline (RCM ordering, DFS reach, threshold
//!    pivoting) once; its [`numerics::sparse_lu::SymbolicLu`] structure
//!    then drives numeric-only
//!    [`numerics::sparse_lu::SparseLu::refactor_in_place`] calls —
//!    triangular solves over the recorded pattern, no ordering, no reach,
//!    no pivot search, zero allocation.
//! 3. **Persistence** — a [`circuit::newton::LinearSolverWorkspace`] owns
//!    both caches plus the factors and lives *across* Newton solves: the
//!    transient integrator carries one over all timesteps, the DC ladder
//!    over all gmin/source rungs, the MPDE solver into its continuation
//!    fallback, shooting across all inner steps and outer iterations, and
//!    sweeps across parameter points. Structural changes are detected (the
//!    slot map verifies every stamp; the factor fingerprints the pattern)
//!    and answered by a transparent rebuild, and a refactorisation whose
//!    recorded pivot vanishes falls back to a fresh factorisation that may
//!    repivot.
//!
//! On the scaled-mixer MPDE Jacobian this makes a numeric refactorisation
//! ~4.6× cheaper than a full factorisation and the end-to-end transient and
//! MPDE solves 2–2.7× faster than the seed implementation (`BENCH_pr1.json`).
//!
//! # Quickstart
//!
//! ```
//! use rfsim::circuit::{BiWaveform, CircuitBuilder, Envelope, GROUND};
//! use rfsim::mpde::solver::{solve_mpde, MpdeOptions};
//!
//! # fn main() -> Result<(), rfsim::circuit::CircuitError> {
//! // An RC filter driven by a carrier 1 kHz below 1 MHz: the MPDE grid
//! // spans one carrier period × one difference period.
//! let (f1, fd) = (1e6, 1e3);
//! let mut b = CircuitBuilder::new();
//! let inp = b.node("in");
//! let out = b.node("out");
//! b.vsource("VRF", inp, GROUND, BiWaveform::ShearedCarrier {
//!     amplitude: 1.0, k: 1, f1, fd, phase: 0.0, envelope: Envelope::Unit,
//! })?;
//! b.resistor("R1", inp, out, 1e3)?;
//! b.capacitor("C1", out, GROUND, 1e-9)?;
//! let circuit = b.build()?;
//! let sol = solve_mpde(&circuit, 1.0 / f1, 1.0 / fd,
//!     MpdeOptions { n1: 16, n2: 8, ..Default::default() })?;
//! println!("solved {} unknowns in {} Newton iterations",
//!     sol.stats.system_size, sol.stats.total_newton_iterations);
//! # Ok(())
//! # }
//! ```

pub mod runner;

pub use rfsim_circuit as circuit;
pub use rfsim_circuits as circuits;
pub use rfsim_hb as hb;
pub use rfsim_mpde as mpde;
pub use rfsim_netlist as netlist;
pub use rfsim_numerics as numerics;
pub use rfsim_rf as rf;
pub use rfsim_serve as serve;
pub use rfsim_shooting as shooting;
